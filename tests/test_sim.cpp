// Tests for the state-vector, density-matrix and trajectories simulators.
#include <gtest/gtest.h>

#include <random>

#include "channels/catalog.hpp"
#include "linalg/qr.hpp"
#include "sim/density.hpp"
#include "sim/statevector.hpp"
#include "sim/trajectories.hpp"

namespace noisim::sim {
namespace {

qc::Circuit random_circuit(int n, int gates, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> q(0, n - 1);
  std::uniform_int_distribution<int> kind(0, 5);
  std::uniform_real_distribution<double> angle(-3.0, 3.0);
  qc::Circuit c(n);
  for (int i = 0; i < gates; ++i) {
    switch (kind(rng)) {
      case 0: c.add(qc::h(q(rng))); break;
      case 1: c.add(qc::t(q(rng))); break;
      case 2: c.add(qc::rx(q(rng), angle(rng))); break;
      case 3: c.add(qc::rz(q(rng), angle(rng))); break;
      default: {
        int a = q(rng), b = q(rng);
        if (a == b) b = (a + 1) % n;
        c.add(qc::cz(a, b));
      }
    }
  }
  return c;
}

TEST(Statevector, InitialState) {
  Statevector sv(3);
  EXPECT_TRUE(approx_equal(sv.amplitude(0), cplx{1, 0}));
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(Statevector, BasisState) {
  const Statevector sv = Statevector::basis(3, 0b101);
  EXPECT_TRUE(approx_equal(sv.amplitude(0b101), cplx{1, 0}));
  EXPECT_TRUE(approx_equal(sv.amplitude(0), cplx{0, 0}));
}

TEST(Statevector, XOnQubitZeroFlipsHighBit) {
  Statevector sv(2);
  sv.apply_gate(qc::x(0));
  EXPECT_TRUE(approx_equal(sv.amplitude(0b10), cplx{1, 0}));
}

TEST(Statevector, BellPairAmplitudes) {
  Statevector sv(2);
  sv.apply_gate(qc::h(0));
  sv.apply_gate(qc::cx(0, 1));
  EXPECT_NEAR(std::abs(sv.amplitude(0b00)), 1 / std::numbers::sqrt2, 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(0b11)), 1 / std::numbers::sqrt2, 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(0b01)), 0.0, 1e-12);
}

class SvVsDenseUnitary : public ::testing::TestWithParam<int> {};

TEST_P(SvVsDenseUnitary, MatchesCircuitUnitaryColumn) {
  const int n = 4;
  const qc::Circuit c = random_circuit(n, 20, static_cast<std::uint64_t>(GetParam()));
  const la::Matrix u = qc::circuit_unitary(c);
  Statevector sv = Statevector::basis(n, 5);
  sv.apply_circuit(c);
  for (std::size_t row = 0; row < (1u << n); ++row)
    EXPECT_TRUE(approx_equal(sv.amplitude(row), u(row, 5), 1e-10));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvVsDenseUnitary, ::testing::Range(0, 10));

TEST(Statevector, Expectation1MatchesDirect) {
  std::mt19937_64 rng(3);
  Statevector sv(3);
  sv.apply_circuit(random_circuit(3, 15, 99));
  const la::Matrix m = la::random_ginibre(2, 2, rng);
  // Compare against applying the operator and taking the inner product.
  Statevector applied = sv;
  applied.apply_matrix1(m, 1);
  EXPECT_TRUE(approx_equal(sv.expectation1(m, 1), sv.inner(applied), 1e-10));
}

TEST(Statevector, NonUnitaryApplication) {
  Statevector sv(1);
  sv.apply_gate(qc::h(0));
  const la::Matrix proj{{1, 0}, {0, 0}};  // |0><0|
  sv.apply_matrix1(proj, 0);
  EXPECT_NEAR(sv.norm2(), 0.5, 1e-12);
}

TEST(Statevector, QubitCountGuard) {
  EXPECT_THROW(Statevector(0), LinalgError);
  EXPECT_THROW(Statevector(27), LinalgError);
}

// --- density matrix ----------------------------------------------------------

TEST(DensityMatrix, PureStateEvolutionMatchesStatevector) {
  for (int seed = 0; seed < 6; ++seed) {
    const int n = 3;
    const qc::Circuit c = random_circuit(n, 18, static_cast<std::uint64_t>(seed) + 50);
    Statevector sv(n);
    sv.apply_circuit(c);
    DensityMatrix dm(n);
    dm.evolve(ch::NoisyCircuit(c));
    for (std::size_t r = 0; r < (1u << n); ++r)
      for (std::size_t cc = 0; cc < (1u << n); ++cc)
        EXPECT_TRUE(approx_equal(dm.element(r, cc),
                                 sv.amplitude(r) * std::conj(sv.amplitude(cc)), 1e-10));
  }
}

TEST(DensityMatrix, ChannelApplicationMatchesDenseKraus) {
  // Apply a channel on qubit 1 of 2 and compare against the dense formula
  // with lifted Kraus operators.
  const ch::Channel noise = ch::amplitude_damping(0.3);
  qc::Circuit prep(2);
  prep.add(qc::h(0)).add(qc::cx(0, 1));
  DensityMatrix dm(2);
  dm.evolve(ch::NoisyCircuit(prep));
  la::Matrix rho = dm.to_matrix();
  dm.apply_channel(noise, 1);

  la::Matrix want(4, 4);
  for (const la::Matrix& k : noise.kraus()) {
    const la::Matrix lifted = la::kron(la::Matrix::identity(2), k);
    want += lifted * rho * lifted.adjoint();
  }
  EXPECT_TRUE(dm.to_matrix().approx_equal(want, 1e-10));
}

TEST(DensityMatrix, TraceIsPreservedThroughNoisyCircuit) {
  qc::Circuit c(3);
  c.add(qc::h(0)).add(qc::cx(0, 1)).add(qc::rx(2, 0.7));
  ch::NoisyCircuit nc(c);
  nc.add_noise(0, ch::depolarizing(0.1));
  nc.add_noise(2, ch::thermal_relaxation(0.05, 1.0, 1.5));
  DensityMatrix dm(3);
  dm.evolve(nc);
  EXPECT_NEAR(dm.trace(), 1.0, 1e-10);
}

TEST(DensityMatrix, FidelityAgainstVector) {
  qc::Circuit c(2);
  c.add(qc::h(0));
  DensityMatrix dm(2);
  dm.evolve(ch::NoisyCircuit(c));
  la::Vector v(4);
  v[0] = cplx{1 / std::numbers::sqrt2, 0};
  v[2] = cplx{1 / std::numbers::sqrt2, 0};
  EXPECT_NEAR(dm.fidelity(v), 1.0, 1e-10);
  EXPECT_NEAR(dm.fidelity_basis(0), 0.5, 1e-10);
}

TEST(DensityMatrix, DepolarizingDrivesTowardsMixed) {
  ch::NoisyCircuit nc(1);
  for (int i = 0; i < 50; ++i) nc.add_noise(0, ch::depolarizing(0.2));
  DensityMatrix dm(1);
  dm.evolve(nc);
  EXPECT_NEAR(dm.fidelity_basis(0), 0.5, 1e-6);
}

// --- trajectories ------------------------------------------------------------

TEST(Trajectories, NoiselessCircuitIsDeterministic) {
  qc::Circuit c(2);
  c.add(qc::h(0)).add(qc::cx(0, 1));
  std::mt19937_64 rng(1);
  const TrajectoryResult r = trajectories_sv(ch::NoisyCircuit(c), 0, 0b11, 50, rng);
  EXPECT_NEAR(r.mean, 0.5, 1e-12);
  // Zero variance up to catastrophic-cancellation roundoff in the estimator.
  EXPECT_NEAR(r.std_error, 0.0, 1e-6);
}

class TrajectoriesConverge : public ::testing::TestWithParam<int> {};

TEST_P(TrajectoriesConverge, AgreesWithDensityMatrixWithinError) {
  const int n = 3;
  const qc::Circuit c = random_circuit(n, 12, static_cast<std::uint64_t>(GetParam()) + 7);
  ch::NoisyCircuit nc(c);
  nc.add_noise(0, ch::depolarizing(0.15));
  nc.add_noise(2, ch::amplitude_damping(0.2));
  nc.add_noise(1, ch::thermal_relaxation(0.02, 0.5, 0.8));

  const double exact = exact_fidelity_mm(nc, 0, 0);
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 1);
  const TrajectoryResult r = trajectories_sv(nc, 0, 0, 4000, rng);
  // 5 sigma (plus epsilon for the zero-variance corner case).
  EXPECT_NEAR(r.mean, exact, 5.0 * r.std_error + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrajectoriesConverge, ::testing::Range(0, 5));

TEST(Trajectories, HoeffdingSampleCount) {
  // r = ln(2/0.01) / (2 * 0.01^2) ~ 26492.
  EXPECT_EQ(hoeffding_samples(0.01, 0.01), 26492u);
  EXPECT_THROW(hoeffding_samples(0.0, 0.5), LinalgError);
}

TEST(Trajectories, HoeffdingRejectsDegenerateInputs) {
  EXPECT_THROW(hoeffding_samples(-0.1, 0.5), LinalgError);
  EXPECT_THROW(hoeffding_samples(0.1, 0.0), LinalgError);
  EXPECT_THROW(hoeffding_samples(0.1, -0.5), LinalgError);
  // failure_prob >= 2 makes ln(2/failure) <= 0: the cast used to overflow
  // to a bogus huge count (or return 0) instead of failing loudly.
  EXPECT_THROW(hoeffding_samples(0.1, 2.0), LinalgError);
  EXPECT_THROW(hoeffding_samples(0.1, 5.0), LinalgError);
  // Vacuous-confidence but well-defined region still returns a count.
  EXPECT_GE(hoeffding_samples(0.1, 1.5), 1u);
}

// --- parallel engine ---------------------------------------------------------

TEST(ParallelEngine, WelfordMatchesTwoPassStatistics) {
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::vector<double> xs(257);
  for (double& x : xs) x = unif(rng);

  Welford w;
  for (double x : xs) w.add(x);

  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);

  EXPECT_EQ(w.count, xs.size());
  EXPECT_NEAR(w.mean, mean, 1e-13);
  EXPECT_NEAR(w.variance(), var, 1e-13);
}

TEST(ParallelEngine, WelfordMergeMatchesSinglePass) {
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  Welford whole, a, b, empty;
  for (int i = 0; i < 100; ++i) {
    const double x = unif(rng);
    whole.add(x);
    (i < 37 ? a : b).add(x);
  }
  a.merge(b);
  a.merge(empty);  // merging an empty accumulator is a no-op
  EXPECT_EQ(a.count, whole.count);
  EXPECT_NEAR(a.mean, whole.mean, 1e-13);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-13);
}

ch::NoisyCircuit parallel_test_circuit() {
  const qc::Circuit c = random_circuit(4, 16, 77);
  ch::NoisyCircuit nc(c);
  nc.add_noise(0, ch::depolarizing(0.1));
  nc.add_noise(2, ch::amplitude_damping(0.15));
  nc.add_noise(3, ch::thermal_relaxation(0.03, 0.6, 0.9));
  return nc;
}

TEST(ParallelEngine, SameSeedSameEstimateAcrossThreadCounts) {
  const ch::NoisyCircuit nc = parallel_test_circuit();
  ParallelOptions opts;
  opts.threads = 1;
  const TrajectoryResult base = trajectories_sv(nc, 0, 0, 500, 42, opts);
  for (std::size_t threads : {2u, 3u, 4u, 8u}) {
    opts.threads = threads;
    const TrajectoryResult r = trajectories_sv(nc, 0, 0, 500, 42, opts);
    // Bit-for-bit: chunk streams and the merge order do not depend on the
    // thread count.
    EXPECT_EQ(r.mean, base.mean) << threads << " threads";
    EXPECT_EQ(r.std_error, base.std_error) << threads << " threads";
    EXPECT_EQ(r.samples, base.samples);
  }
}

TEST(ParallelEngine, DifferentSeedsDiffer) {
  const ch::NoisyCircuit nc = parallel_test_circuit();
  ParallelOptions opts;
  opts.threads = 2;
  const TrajectoryResult a = trajectories_sv(nc, 0, 0, 200, 1, opts);
  const TrajectoryResult b = trajectories_sv(nc, 0, 0, 200, 2, opts);
  EXPECT_NE(a.mean, b.mean);
}

TEST(ParallelEngine, ParallelAgreesWithSerialWithinStatisticalError) {
  const ch::NoisyCircuit nc = parallel_test_circuit();
  const double exact = exact_fidelity_mm(nc, 0, 0);

  std::mt19937_64 rng(11);
  const TrajectoryResult serial = trajectories_sv(nc, 0, 0, 3000, rng);
  ParallelOptions opts;
  opts.threads = 4;
  const TrajectoryResult parallel = trajectories_sv(nc, 0, 0, 3000, 11, opts);

  // Both are unbiased estimators of the same fidelity: check each against
  // the exact value at 5 sigma, and against each other at combined error.
  EXPECT_NEAR(serial.mean, exact, 5.0 * serial.std_error + 1e-6);
  EXPECT_NEAR(parallel.mean, exact, 5.0 * parallel.std_error + 1e-6);
  EXPECT_NEAR(parallel.mean, serial.mean,
              5.0 * (parallel.std_error + serial.std_error) + 1e-6);
}

TEST(ParallelEngine, PartialFinalChunkCountsAllSamples) {
  const ch::NoisyCircuit nc = parallel_test_circuit();
  ParallelOptions opts;
  opts.threads = 3;
  opts.chunk_size = 7;  // 100 = 14 * 7 + 2: exercises the short last chunk
  const TrajectoryResult r = trajectories_sv(nc, 0, 0, 100, 5, opts);
  EXPECT_EQ(r.samples, 100u);
  EXPECT_GE(r.mean, 0.0);
  EXPECT_LE(r.mean, 1.0 + 1e-12);
}

TEST(ParallelEngine, RejectsDegenerateArguments) {
  const ch::NoisyCircuit nc = parallel_test_circuit();
  ParallelOptions opts;
  opts.chunk_size = 0;
  EXPECT_THROW(trajectories_sv(nc, 0, 0, 10, 1, opts), LinalgError);
}

TEST(ParallelEngine, ZeroSamplesIsAWellDefinedEmptyEstimate) {
  // A sweep driver that partitions a sample budget can land on an empty
  // shard; that must be an empty estimate, not an exception.
  const ch::NoisyCircuit nc = parallel_test_circuit();
  ParallelOptions opts;
  const TrajectoryResult r = trajectories_sv(nc, 0, 0, 0, 1, opts);
  EXPECT_EQ(r.samples, 0u);
  EXPECT_EQ(r.mean, 0.0);
  EXPECT_EQ(r.std_error, 0.0);
  std::mt19937_64 rng(1);
  const TrajectoryResult direct = trajectories_sv(nc, 0, 0, 0, rng);
  EXPECT_EQ(direct.samples, 0u);
  EXPECT_EQ(direct.mean, 0.0);
}

TEST(ParallelEngine, WorkerExceptionsPropagate) {
  ParallelOptions opts;
  opts.threads = 4;
  opts.chunk_size = 1;
  EXPECT_THROW(run_trajectories(
                   64, 9, [](std::mt19937_64&) -> double { throw LinalgError("boom"); }, opts),
               LinalgError);
}

TEST(Trajectories, SingleSampleOfUnitaryMixtureIsValidFidelity) {
  qc::Circuit c(2);
  c.add(qc::h(0));
  ch::NoisyCircuit nc(c);
  nc.add_noise(0, ch::depolarizing(0.5));
  std::mt19937_64 rng(9);
  for (int i = 0; i < 20; ++i) {
    const double f = sample_trajectory_sv(nc, 0, 0, rng);
    EXPECT_GE(f, -1e-12);
    EXPECT_LE(f, 1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace noisim::sim
