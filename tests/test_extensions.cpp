// Tests for the extensions beyond the paper: 2-qubit noise channels in the
// splitting algorithm, grid-sweep contraction sequences, parallel term
// evaluation and the generalized (per-site) error bound.
#include <gtest/gtest.h>

#include <random>

#include "bench_support/generators.hpp"
#include "channels/catalog.hpp"
#include "core/approx.hpp"
#include "core/bounds.hpp"
#include "core/doubled_network.hpp"
#include "core/grid_order.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "sim/density.hpp"
#include "sim/trajectories.hpp"

namespace noisim {
namespace {

ch::NoisyCircuit mixed_noise_circuit(std::uint64_t seed, double p) {
  std::mt19937_64 rng(seed);
  qc::Circuit c(3);
  c.add(qc::h(0)).add(qc::cz(0, 1)).add(qc::ry(2, 0.7)).add(qc::cz(1, 2)).add(qc::t(0));
  ch::NoisyCircuit nc(3);
  const auto& gs = c.gates();
  for (std::size_t i = 0; i < gs.size(); ++i) {
    nc.add_gate(gs[i]);
    if (i == 1) nc.add_noise_2q(0, 1, ch::two_qubit_depolarizing(p));
    if (i == 2) nc.add_noise(2, ch::depolarizing(p));
    if (i == 3) nc.add_noise_2q(1, 2, ch::two_qubit_depolarizing(p / 2));
  }
  return nc;
}

// --- 2-qubit channel basics -----------------------------------------------------

TEST(TwoQubitNoise, ChannelIsCptp) {
  const ch::Channel c = ch::two_qubit_depolarizing(0.1);
  EXPECT_EQ(c.dim(), 4u);
  EXPECT_EQ(c.num_qubits(), 2u);
  EXPECT_LT(c.completeness_defect(), 1e-10);
}

TEST(TwoQubitNoise, FixesMaximallyMixedState) {
  la::Matrix mixed = la::Matrix::identity(4);
  mixed *= 0.25;
  EXPECT_TRUE(ch::two_qubit_depolarizing(0.37).apply(mixed).approx_equal(mixed, 1e-12));
}

TEST(TwoQubitNoise, SplitReconstructsSuperoperator) {
  const ch::Channel c = ch::two_qubit_depolarizing(0.02);
  const core::SplitNoise split = core::split_noise(c);
  EXPECT_EQ(split.terms(), 16u);
  EXPECT_TRUE(split.reconstruct().approx_equal(c.superoperator(), 1e-9));
  for (std::size_t i = 0; i + 1 < split.terms(); ++i)
    EXPECT_GE(split.weights[i], split.weights[i + 1] - 1e-12);
}

TEST(TwoQubitNoise, GeneralizedLemma2Bound) {
  // ||M - U0 (x) V0|| <= d^2 * rate for d = 4.
  const ch::Channel c = ch::two_qubit_depolarizing(0.05);
  const core::SplitNoise split = core::split_noise(c);
  EXPECT_LE(split.dominant_term_error(), 16.0 * c.noise_rate() + 1e-9);
}

TEST(TwoQubitNoise, PermutationGeneralIsInvolution) {
  std::mt19937_64 rng(3);
  const la::Matrix m = la::random_ginibre(16, 16, rng);
  EXPECT_TRUE(core::tensor_permutation_general(core::tensor_permutation_general(m, 4), 4)
                  .approx_equal(m, 1e-12));
}

// --- 2-qubit noise through every simulator ---------------------------------------

class TwoQubitNoiseSim : public ::testing::TestWithParam<int> {};

TEST_P(TwoQubitNoiseSim, DoubledDiagramMatchesDensityMatrix) {
  const ch::NoisyCircuit nc = mixed_noise_circuit(static_cast<std::uint64_t>(GetParam()), 0.08);
  const double mm = sim::exact_fidelity_mm(nc, 0, 0);
  EXPECT_NEAR(core::exact_fidelity_tn(nc, 0, 0), mm, 1e-9);
}

TEST_P(TwoQubitNoiseSim, FullLevelApproximationIsExact) {
  const ch::NoisyCircuit nc = mixed_noise_circuit(static_cast<std::uint64_t>(GetParam()) + 10, 0.06);
  const double mm = sim::exact_fidelity_mm(nc, 0, 0);
  core::ApproxOptions opts;
  opts.level = nc.noise_count();
  EXPECT_NEAR(core::approximate_fidelity(nc, 0, 0, opts).value, mm, 1e-9);
}

TEST_P(TwoQubitNoiseSim, Level1WithinTightBound) {
  const ch::NoisyCircuit nc = mixed_noise_circuit(static_cast<std::uint64_t>(GetParam()) + 20, 0.02);
  const double mm = sim::exact_fidelity_mm(nc, 0, 0);
  core::ApproxOptions opts;
  opts.level = 1;
  const core::ApproxResult r = core::approximate_fidelity(nc, 0, 0, opts);
  EXPECT_LE(std::abs(r.value - mm), r.tight_error_bound + 1e-12);
  EXPECT_DOUBLE_EQ(r.error_bound, r.tight_error_bound);  // mixed arity uses the DP bound
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoQubitNoiseSim, ::testing::Range(0, 5));

TEST(TwoQubitNoise, TrajectoriesAgreeWithExact) {
  const ch::NoisyCircuit nc = mixed_noise_circuit(4, 0.15);
  const double exact = sim::exact_fidelity_mm(nc, 0, 0);
  std::mt19937_64 rng(5);
  const sim::TrajectoryResult r = sim::trajectories_sv(nc, 0, 0, 4000, rng);
  EXPECT_NEAR(r.mean, exact, 5.0 * r.std_error + 1e-6);
}

TEST(TwoQubitNoise, TddHandlesTwoQubitSuperoperatorNode) {
  const ch::NoisyCircuit nc = mixed_noise_circuit(6, 0.1);
  const double mm = sim::exact_fidelity_mm(nc, 0, 0);
  EXPECT_NEAR(core::exact_fidelity_tn(nc, 0, 0), mm, 1e-9);
}

// --- generalized error bound -------------------------------------------------------

TEST(GeneralizedBound, ReducesToTheorem1WithUniformPaperConstants) {
  const std::size_t n = 12;
  const double p = 0.003;
  const std::vector<double> a(n, 1.0 + 4.0 * p), b(n, 4.0 * p);
  for (std::size_t level : {0u, 1u, 2u, 3u}) {
    EXPECT_NEAR(core::generalized_error_bound(a, b, level),
                core::theorem1_error_bound(n, p, level), 1e-12);
  }
}

TEST(GeneralizedBound, TightBoundIsNoLooserThanTheorem1) {
  // The numeric per-site norms are tighter than the paper's 4p inflation.
  const qc::Circuit c = bench::qaoa_grid(2, 2, 1, 9);
  const ch::NoisyCircuit nc = bench::insert_noises(c, 4, bench::depolarizing_noise(0.004), 10);
  core::ApproxOptions opts;
  opts.level = 1;
  const core::ApproxResult r = core::approximate_fidelity(nc, 0, 0, opts);
  EXPECT_LE(r.tight_error_bound, r.error_bound + 1e-12);
}

TEST(GeneralizedBound, ZeroAtFullLevel) {
  const std::vector<double> a{1.1, 1.2, 1.05}, b{0.1, 0.2, 0.15};
  EXPECT_NEAR(core::generalized_error_bound(a, b, 3), 0.0, 1e-12);
}

TEST(GeneralizedBound, ValidatesInput) {
  EXPECT_THROW(core::generalized_error_bound({1.0}, {0.1, 0.2}, 1), LinalgError);
  EXPECT_THROW(core::generalized_error_bound({-1.0}, {0.1}, 1), LinalgError);
}

// --- grid sweep sequence --------------------------------------------------------------

TEST(GridSweep, SequenceIsAPermutationOfAllNodes) {
  const qc::Circuit c = bench::qaoa_grid(3, 4, 1, 11);
  const auto seq = core::grid_sweep_sequence(3, 4, c.gates());
  const std::size_t expect = 12 + c.size() + 12;
  ASSERT_EQ(seq.size(), expect);
  std::vector<bool> seen(expect, false);
  for (std::size_t i : seq) {
    ASSERT_LT(i, expect);
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(GridSweep, MatchesGreedyValueOnGridQaoa) {
  const qc::Circuit c = bench::qaoa_grid(3, 3, 1, 12);
  core::EvalOptions greedy, sweep;
  greedy.backend = core::EvalOptions::Backend::TensorNetwork;
  sweep.backend = core::EvalOptions::Backend::TensorNetwork;
  sweep.sequence_for = core::make_grid_sweep(3, 3);
  const cplx a = core::amplitude(9, c.gates(), 0, 0, false, greedy);
  const cplx b = core::amplitude(9, c.gates(), 0, 0, false, sweep);
  EXPECT_TRUE(approx_equal(a, b, 1e-10 + 1e-8 * std::abs(a)));
}

TEST(GridSweep, StaysWithinTightMemoryOnLargerGrid) {
  const qc::Circuit c = bench::qaoa_grid(5, 5, 1, 13);
  core::EvalOptions sweep;
  sweep.backend = core::EvalOptions::Backend::TensorNetwork;
  sweep.sequence_for = core::make_grid_sweep(5, 5);
  // The row-sweep frontier carries ~2-3 wire segments per column (the
  // CZ-RZ-CZ edge triple crosses the row cut twice), so the peak for a
  // 5-column grid sits near 2^17 elements.
  sweep.tn.max_tensor_elems = 1 << 18;
  EXPECT_NO_THROW(core::amplitude(25, c.gates(), 0, 0, false, sweep));
}

TEST(GridSweep, FallsBackWhenShapeMismatches) {
  const qc::Circuit c = bench::qaoa_grid(2, 2, 1, 14);
  core::EvalOptions sweep;
  sweep.backend = core::EvalOptions::Backend::TensorNetwork;
  sweep.sequence_for = core::make_grid_sweep(7, 7);  // wrong shape -> empty -> default
  EXPECT_NO_THROW(core::amplitude(4, c.gates(), 0, 0, false, sweep));
}

TEST(GridSweep, WorksInsideTheApproximationEngine) {
  const qc::Circuit c = bench::qaoa_grid(3, 3, 1, 15);
  const ch::NoisyCircuit nc = bench::insert_noises(c, 3, bench::realistic_noise(1e-2), 16);
  core::ApproxOptions plain, swept;
  plain.level = swept.level = 1;
  plain.eval.backend = swept.eval.backend = core::EvalOptions::Backend::TensorNetwork;
  swept.eval.sequence_for = core::make_grid_sweep(3, 3);
  const double a = core::approximate_fidelity(nc, 0, 0, plain).value;
  const double b = core::approximate_fidelity(nc, 0, 0, swept).value;
  EXPECT_NEAR(a, b, 1e-9);
}

// --- parallel term evaluation ------------------------------------------------------------

class ParallelEngine : public ::testing::TestWithParam<int> {};

TEST_P(ParallelEngine, ThreadsProduceIdenticalResults) {
  const qc::Circuit c = bench::qaoa_grid(2, 3, 1, static_cast<std::uint64_t>(GetParam()));
  const ch::NoisyCircuit nc =
      bench::insert_noises(c, 5, bench::realistic_noise(8e-3), 17 + GetParam());
  core::ApproxOptions serial, parallel;
  serial.level = parallel.level = 2;
  serial.threads = 1;
  parallel.threads = 4;
  const core::ApproxResult a = core::approximate_fidelity(nc, 0, 0, serial);
  const core::ApproxResult b = core::approximate_fidelity(nc, 0, 0, parallel);
  // Deterministic reduction order => bitwise-identical sums.
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.contractions, b.contractions);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEngine, ::testing::Range(0, 4));

TEST(ParallelEngine, WorkerExceptionsPropagate) {
  const qc::Circuit c = bench::qaoa_grid(2, 2, 1, 3);
  const ch::NoisyCircuit nc = bench::insert_noises(c, 3, bench::realistic_noise(8e-3), 4);
  core::ApproxOptions opts;
  opts.level = 1;
  opts.threads = 4;
  opts.eval.backend = core::EvalOptions::Backend::TensorNetwork;
  opts.eval.tn.max_tensor_elems = 1;  // force MemoryOutError inside workers
  EXPECT_THROW(core::approximate_fidelity(nc, 0, 0, opts), MemoryOutError);
}

}  // namespace
}  // namespace noisim
