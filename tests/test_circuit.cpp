// Tests for gates, circuits and the peephole simplifier.
#include <gtest/gtest.h>

#include <numbers>
#include <random>

#include "circuit/circuit.hpp"
#include "circuit/simplify.hpp"
#include "linalg/qr.hpp"

namespace noisim::qc {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Gate, NamedSingleQubitGatesAreUnitary) {
  const Gate gates[] = {h(0),      x(0),     y(0),        z(0),        s(0),
                        sdg(0),    t(0),     tdg(0),      sqrt_x(0),   sqrt_y(0),
                        sqrt_w(0), rx(0, 0.7), ry(0, -1.2), rz(0, 2.5), phase(0, 0.3)};
  for (const Gate& g : gates) EXPECT_TRUE(g.matrix().is_unitary(1e-12)) << g.description();
}

TEST(Gate, NamedTwoQubitGatesAreUnitary) {
  const Gate gates[] = {cz(0, 1),        cx(0, 1),          cphase(0, 1, 0.9),
                        zz(0, 1, 0.4),   fsim(0, 1, 0.5, 0.2), givens(0, 1, 0.8)};
  for (const Gate& g : gates) EXPECT_TRUE(g.matrix().is_unitary(1e-12)) << g.description();
}

TEST(Gate, SquareRootGatesSquareToBase) {
  EXPECT_TRUE((sqrt_x(0).matrix() * sqrt_x(0).matrix()).approx_equal(x(0).matrix(), 1e-12));
  EXPECT_TRUE((sqrt_y(0).matrix() * sqrt_y(0).matrix()).approx_equal(y(0).matrix(), 1e-12));
  // W = (X + Y)/sqrt(2).
  la::Matrix w = x(0).matrix();
  w += y(0).matrix();
  w *= 1.0 / std::numbers::sqrt2;
  EXPECT_TRUE((sqrt_w(0).matrix() * sqrt_w(0).matrix()).approx_equal(w, 1e-12));
}

TEST(Gate, SAndTRelations) {
  EXPECT_TRUE((t(0).matrix() * t(0).matrix()).approx_equal(s(0).matrix(), 1e-12));
  EXPECT_TRUE((s(0).matrix() * s(0).matrix()).approx_equal(z(0).matrix(), 1e-12));
}

TEST(Gate, HadamardDiagonalizesX) {
  const la::Matrix hm = h(0).matrix();
  EXPECT_TRUE((hm * x(0).matrix() * hm).approx_equal(z(0).matrix(), 1e-12));
}

TEST(Gate, RotationComposition) {
  // Rz(a) Rz(b) = Rz(a+b).
  EXPECT_TRUE((rz(0, 0.3).matrix() * rz(0, 0.9).matrix()).approx_equal(rz(0, 1.2).matrix(), 1e-12));
  // Rx(pi) = -iX.
  la::Matrix want = x(0).matrix();
  want *= cplx{0.0, -1.0};
  EXPECT_TRUE(rx(0, kPi).matrix().approx_equal(want, 1e-12));
}

TEST(Gate, ControlledGateBlocks) {
  const la::Matrix m = cx(0, 1).matrix();
  // |10> -> |11>.
  EXPECT_TRUE(approx_equal(m(3, 2), cplx{1, 0}));
  EXPECT_TRUE(approx_equal(m(2, 3), cplx{1, 0}));
  const la::Matrix u{{0, 1}, {1, 0}};
  EXPECT_TRUE(cu(0, 1, u).matrix().approx_equal(m, 1e-12));
}

TEST(Gate, CzMatchesPaperMatrix) {
  const la::Matrix m = cz(0, 1).matrix();
  EXPECT_TRUE(m.is_diagonal());
  EXPECT_TRUE(approx_equal(m(3, 3), cplx{-1, 0}));
}

TEST(Gate, ZZIsExpOfPauliZZ) {
  const double gamma = 0.7;
  const la::Matrix m = zz(0, 1, gamma).matrix();
  EXPECT_TRUE(approx_equal(m(0, 0), std::polar(1.0, -gamma / 2)));
  EXPECT_TRUE(approx_equal(m(1, 1), std::polar(1.0, gamma / 2)));
  EXPECT_TRUE(approx_equal(m(3, 3), std::polar(1.0, -gamma / 2)));
}

TEST(Gate, FsimAtZeroIsIdentity) {
  EXPECT_TRUE(fsim(0, 1, 0.0, 0.0).matrix().is_identity(1e-12));
}

TEST(Gate, GivensRotatesSingleExcitationSubspace) {
  const la::Matrix m = givens(0, 1, kPi / 2).matrix();
  // |01> -> |10> at theta = pi/2.
  EXPECT_TRUE(approx_equal(m(2, 1), cplx{1, 0}));
  EXPECT_TRUE(approx_equal(m(1, 2), cplx{-1, 0}));
}

class AdjointEveryKind : public ::testing::TestWithParam<int> {};

TEST_P(AdjointEveryKind, AdjointInvertsGate) {
  std::mt19937_64 rng(42);
  const std::vector<Gate> gates = {
      h(0),      x(0),        y(0),          z(0),          s(0),          sdg(0),
      t(0),      tdg(0),      sqrt_x(0),     sqrt_y(0),     sqrt_w(0),     rx(0, 0.7),
      ry(0, 1.3), rz(0, -0.4), phase(0, 0.9), cz(0, 1),      cx(0, 1),      cphase(0, 1, 1.1),
      zz(0, 1, 0.6), fsim(0, 1, 0.3, 0.8),   givens(0, 1, 0.5),
      cu(0, 1, la::random_unitary(2, rng)),  u1q(0, la::random_unitary(2, rng)),
      u2q(0, 1, la::random_unitary(4, rng))};
  const Gate& g = gates[static_cast<std::size_t>(GetParam())];
  EXPECT_TRUE((g.matrix() * g.adjoint().matrix()).is_identity(1e-12)) << g.description();
  EXPECT_TRUE(is_inverse_pair(g, g.adjoint())) << g.description();
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AdjointEveryKind, ::testing::Range(0, 24));

TEST(Gate, IsInversePairRejectsDifferentQubits) {
  EXPECT_FALSE(is_inverse_pair(h(0), h(1)));
  EXPECT_FALSE(is_inverse_pair(cz(0, 1), cz(0, 2)));
  EXPECT_FALSE(is_inverse_pair(h(0), cz(0, 1)));
}

TEST(Gate, FactoryValidation) {
  EXPECT_THROW(h(-1), LinalgError);
  EXPECT_THROW(cz(2, 2), LinalgError);
  EXPECT_THROW(u1q(0, la::Matrix(3, 3)), LinalgError);
}

// --- circuit -----------------------------------------------------------------

TEST(Circuit, AddValidatesQubits) {
  Circuit c(2);
  EXPECT_NO_THROW(c.add(cz(0, 1)));
  EXPECT_THROW(c.add(h(2)), LinalgError);
  EXPECT_THROW(c.add(cz(0, 2)), LinalgError);
}

TEST(Circuit, DepthLayersDisjointGates) {
  Circuit c(4);
  c.add(h(0)).add(h(1)).add(h(2)).add(h(3));
  EXPECT_EQ(c.depth(), 1u);
  c.add(cz(0, 1)).add(cz(2, 3));
  EXPECT_EQ(c.depth(), 2u);
  c.add(cz(1, 2));
  EXPECT_EQ(c.depth(), 3u);
}

TEST(Circuit, TwoQubitCount) {
  Circuit c(3);
  c.add(h(0)).add(cz(0, 1)).add(cx(1, 2)).add(t(2));
  EXPECT_EQ(c.two_qubit_count(), 2u);
}

TEST(Circuit, AdjointReversesAndInverts) {
  Circuit c(2);
  c.add(h(0)).add(cz(0, 1)).add(rx(1, 0.7));
  const la::Matrix u = circuit_unitary(c);
  const la::Matrix udg = circuit_unitary(c.adjoint());
  EXPECT_TRUE((u * udg).is_identity(1e-10));
}

TEST(Circuit, UnitaryOfBellPairCircuit) {
  Circuit c(2);
  c.add(h(0)).add(cx(0, 1));
  const la::Matrix u = circuit_unitary(c);
  // |00> -> (|00> + |11>)/sqrt(2).
  EXPECT_TRUE(approx_equal(u(0, 0), cplx{1 / std::numbers::sqrt2, 0}, 1e-12));
  EXPECT_TRUE(approx_equal(u(3, 0), cplx{1 / std::numbers::sqrt2, 0}, 1e-12));
  EXPECT_TRUE(approx_equal(u(1, 0), cplx{0, 0}, 1e-12));
}

TEST(Circuit, UnitaryQubitOrderingConvention) {
  // X on qubit 0 of two qubits: |00> -> |10>, i.e. column 0 row 2.
  Circuit c(2);
  c.add(x(0));
  const la::Matrix u = circuit_unitary(c);
  EXPECT_TRUE(approx_equal(u(2, 0), cplx{1, 0}, 1e-12));
}

TEST(Circuit, AppendAndCompose) {
  Circuit a(2), b(2);
  a.add(h(0));
  b.add(cx(0, 1));
  Circuit ab = a;
  ab.append(b);
  EXPECT_EQ(ab.size(), 2u);
  const la::Matrix u = circuit_unitary(ab);
  EXPECT_TRUE(u.approx_equal(circuit_unitary(b) * circuit_unitary(a), 1e-12));
}

// --- simplify ----------------------------------------------------------------

TEST(Simplify, CancelsAdjacentInversePair) {
  std::vector<Gate> gates{h(0), h(0)};
  EXPECT_TRUE(cancel_inverse_pairs(gates).empty());
}

TEST(Simplify, CancelsAcrossDisjointGates) {
  std::vector<Gate> gates{h(0), x(1), cz(2, 3), h(0)};
  const auto out = cancel_inverse_pairs(gates);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].kind, GateKind::X);
  EXPECT_EQ(out[1].kind, GateKind::CZ);
}

TEST(Simplify, BlockedByOverlappingGate) {
  std::vector<Gate> gates{h(0), x(0), h(0)};
  EXPECT_EQ(cancel_inverse_pairs(gates).size(), 3u);
}

TEST(Simplify, CascadesNestedPairs) {
  // h x x h -> h h -> empty.
  std::vector<Gate> gates{h(0), x(0), x(0), h(0)};
  EXPECT_TRUE(cancel_inverse_pairs(gates).empty());
}

TEST(Simplify, MirroredCircuitCollapsesOutsideLightCone) {
  // C then C^dagger with a marker gate between on qubit 1: only the light
  // cone of the marker survives.
  Circuit c(4);
  c.add(h(0)).add(cz(0, 1)).add(cz(2, 3)).add(rx(3, 0.4)).add(ry(1, 0.2));
  std::vector<Gate> gates = c.gates();
  gates.push_back(z(1));  // marker (self-inverse but nothing pairs with it)
  const Circuit inv = c.adjoint();
  gates.insert(gates.end(), inv.gates().begin(), inv.gates().end());

  const auto out = cancel_inverse_pairs(gates);
  // Expected survivors: the light cone of qubit 1 = {ry(1), z(1), ry(1)^dag,
  // cz(0,1) pair, h(0) pair} -- cz/h do NOT cancel because z(1) blocks
  // between them. Everything on qubits 2,3 cancels.
  for (const Gate& g : out) {
    EXPECT_FALSE(g.acts_on(2)) << g.description();
    EXPECT_FALSE(g.acts_on(3)) << g.description();
  }
  EXPECT_LT(out.size(), gates.size());
}

TEST(Simplify, PreservesCircuitUnitary) {
  std::mt19937_64 rng(5);
  for (int seed = 0; seed < 6; ++seed) {
    Circuit c(3);
    std::uniform_int_distribution<int> pick(0, 4);
    for (int i = 0; i < 12; ++i) {
      switch (pick(rng)) {
        case 0: c.add(h(i % 3)); break;
        case 1: c.add(t(i % 3)); break;
        case 2: c.add(tdg(i % 3)); break;
        case 3: c.add(cz(i % 3, (i + 1) % 3)); break;
        case 4: c.add(rx(i % 3, 0.3)); break;
      }
    }
    Circuit cc = c;
    cc.append(c.adjoint());
    const Circuit reduced = cancel_inverse_pairs(cc);
    EXPECT_TRUE(circuit_unitary(reduced).is_identity(1e-9));
  }
}

TEST(Simplify, LightConeComputation) {
  Circuit c(4);
  c.add(cz(0, 1)).add(cz(1, 2)).add(h(3));
  const auto cone = light_cone(c.gates(), {2});
  EXPECT_EQ(cone, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace noisim::qc
