// Tests for the plan/execute contraction engine: plan determinism,
// replay equivalence (including the Algorithm-1 substitution path), and
// MO/TO surfacing at plan time.
#include <gtest/gtest.h>

#include <random>

#include "bench_support/generators.hpp"
#include "bench_support/harness.hpp"
#include "core/approx.hpp"
#include "core/trajectories_tn.hpp"
#include "tn/contractor.hpp"
#include "tn/plan.hpp"

namespace noisim::tn {
namespace {

using tsr::Tensor;

Tensor random_tensor(std::vector<std::size_t> shape, std::mt19937_64& rng) {
  Tensor t(std::move(shape));
  std::normal_distribution<double> gauss;
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = cplx{gauss(rng), gauss(rng)};
  return t;
}

/// The ladder network from the contractor tests: two rails with rungs,
/// nontrivial enough that greedy ordering makes real choices.
Network ladder_network(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Network net;
  std::vector<EdgeId> rail_a, rail_b, rungs;
  for (int i = 0; i < 5; ++i) {
    rail_a.push_back(net.new_edge());
    rail_b.push_back(net.new_edge());
  }
  for (int i = 0; i < 5; ++i) rungs.push_back(net.new_edge());
  net.add_node(random_tensor({2, 2}, rng), {rail_a[0], rail_b[0]});
  for (int i = 0; i < 4; ++i) {
    net.add_node(random_tensor({2, 2, 2}, rng), {rail_a[i], rail_a[i + 1], rungs[i]});
    net.add_node(random_tensor({2, 2, 2}, rng), {rail_b[i], rail_b[i + 1], rungs[i]});
  }
  net.add_node(random_tensor({2, 2, 2}, rng), {rail_a[4], rail_b[4], rungs[4]});
  net.add_node(random_tensor({2}, rng), {rungs[4]});
  return net;
}

bool same_bits(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;
  return true;
}

TEST(Plan, SameTopologyCompilesToIdenticalPlans) {
  // Different tensor *contents*, same topology: plans must be identical.
  const Network net_a = ladder_network(1);
  const Network net_b = ladder_network(99);
  for (OrderStrategy strat : {OrderStrategy::Greedy, OrderStrategy::Sequential}) {
    ContractOptions opts;
    opts.strategy = strat;
    const ContractionPlan pa = ContractionPlan::compile(net_a, opts);
    const ContractionPlan pb = ContractionPlan::compile(net_b, opts);
    EXPECT_EQ(pa.fingerprint(), pb.fingerprint());
    EXPECT_EQ(pa.steps().size(), net_a.num_nodes() - 1);
  }
}

TEST(Plan, ReplayMatchesContractNetworkBitwise) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Network net = ladder_network(seed);
    for (OrderStrategy strat : {OrderStrategy::Greedy, OrderStrategy::Sequential}) {
      ContractOptions opts;
      opts.strategy = strat;
      const Tensor eager = contract_network(net, opts);
      const ContractionPlan plan = ContractionPlan::compile(net, opts);
      PlanWorkspace ws;
      // Replaying twice through one workspace must also be stable.
      const Tensor once = plan.execute(net, ws);
      const Tensor twice = plan.execute(net, ws);
      EXPECT_TRUE(same_bits(eager, once));
      EXPECT_TRUE(same_bits(once, twice));
    }
  }
}

TEST(Plan, ReplaysAgainstSubstitutedContents) {
  // Plan compiled from one instance, replayed against another instance of
  // the same topology: must match planning that instance from scratch.
  const Network plan_net = ladder_network(7);
  const Network other = ladder_network(8);
  const ContractionPlan plan = ContractionPlan::compile(plan_net);
  PlanWorkspace ws;
  std::vector<const Tensor*> inputs;
  for (std::size_t i = 0; i < other.num_nodes(); ++i) inputs.push_back(&other.node(i).tensor);
  const Tensor replayed = plan.execute(inputs, ws);
  const Tensor eager = contract_network(other);
  EXPECT_TRUE(same_bits(eager, replayed));
}

TEST(Plan, StatsCountCompilationsAndReuse) {
  const Network net = ladder_network(3);
  ContractStats stats;
  const ContractionPlan plan = ContractionPlan::compile(net, {}, &stats);
  EXPECT_EQ(stats.plans_compiled, 1u);
  EXPECT_EQ(stats.plan_executions, 0u);
  PlanWorkspace ws;
  plan.execute(net, ws, &stats);
  plan.execute(net, ws, &stats);
  plan.execute(net, ws, &stats);
  EXPECT_EQ(stats.plan_executions, 3u);
  EXPECT_EQ(stats.plan_reuse_hits, 2u);
  EXPECT_EQ(stats.num_pairwise, 3 * plan.steps().size());
  EXPECT_GE(stats.peak_elems, 1u);
}

TEST(Plan, ContractNetworkReportsPlanStats) {
  const Network net = ladder_network(4);
  ContractStats stats;
  contract_network(net, {}, &stats);
  EXPECT_EQ(stats.plans_compiled, 1u);
  EXPECT_EQ(stats.plan_executions, 1u);
  EXPECT_EQ(stats.plan_reuse_hits, 0u);
}

TEST(Plan, WorkspaceAccountingIsBounded) {
  const Network net = ladder_network(5);
  const ContractionPlan plan = ContractionPlan::compile(net);
  // The liveness-packed arena can never beat the largest intermediate but
  // must stay below the sum of all step outputs (regions are recycled).
  std::size_t total = 0;
  for (const PlanStep& s : plan.steps()) total += s.out_elems;
  EXPECT_GE(plan.workspace_elems(), plan.peak_elems());
  EXPECT_LT(plan.workspace_elems(), total);
}

TEST(Plan, WorkspaceBudgetThrowsMemoryOut) {
  const Network net = ladder_network(6);
  ContractOptions opts;
  opts.max_workspace_elems = 2;  // far below any real arena
  EXPECT_THROW(ContractionPlan::compile(net, opts), MemoryOutError);
}

Network over_budget_network(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Network net;
  std::vector<EdgeId> open_edges;
  EdgeId spine_prev = net.new_edge();
  net.add_node(random_tensor({2}, rng), {spine_prev});
  for (int i = 0; i < 20; ++i) {
    const EdgeId spine_next = net.new_edge();
    const EdgeId leaf = net.new_edge();
    net.add_node(random_tensor({2, 2, 2}, rng), {spine_prev, spine_next, leaf});
    open_edges.push_back(leaf);
    spine_prev = spine_next;
  }
  net.add_node(random_tensor({2}, rng), {spine_prev});
  return net;
}

TEST(Plan, PlanTimeMemoryOutMapsToMO) {
  // MO now surfaces while *planning* (before any arithmetic); the harness
  // must still map it to the paper's "MO" table entry.
  const Network net = over_budget_network(10);
  ContractOptions opts;
  opts.max_tensor_elems = 1 << 10;
  EXPECT_THROW(ContractionPlan::compile(net, opts), MemoryOutError);
  const bench::RunOutcome out = bench::run_guarded([&] {
    ContractionPlan::compile(net, opts);
    return 0.0;
  });
  EXPECT_EQ(out.status, bench::RunOutcome::Status::MemoryOut);
  EXPECT_EQ(bench::format_time(out), "MO");
}

TEST(Plan, PlanTimeTimeoutMapsToTO) {
  const Network net = ladder_network(11);
  ContractOptions opts;
  opts.timeout_seconds = 1e-12;
  EXPECT_THROW(ContractionPlan::compile(net, opts), TimeoutError);
  const bench::RunOutcome out = bench::run_guarded([&] {
    ContractionPlan::compile(net, opts);
    return 0.0;
  });
  EXPECT_EQ(out.status, bench::RunOutcome::Status::Timeout);
  EXPECT_EQ(bench::format_time(out), "TO");
}

}  // namespace
}  // namespace noisim::tn

namespace noisim::core {
namespace {

/// Fig. 4 workload, scaled to test size: hardware-grid QAOA with realistic
/// injected noise, evaluated through the tensor-network backend.
ch::NoisyCircuit fig4_workload(int n, std::size_t noises) {
  const qc::Circuit circuit = bench::qaoa(n, 1, 77);
  return bench::insert_noises(circuit, noises, bench::realistic_noise(), 500 + noises);
}

ApproxOptions tn_opts(std::size_t level, bool reuse, std::size_t threads) {
  ApproxOptions opts;
  opts.level = level;
  opts.threads = threads;
  opts.reuse_plans = reuse;
  opts.eval.backend = EvalOptions::Backend::TensorNetwork;
  return opts;
}

void expect_same_bits(const ApproxResult& a, const ApproxResult& b) {
  EXPECT_EQ(a.raw.real(), b.raw.real());
  EXPECT_EQ(a.raw.imag(), b.raw.imag());
  ASSERT_EQ(a.level_values.size(), b.level_values.size());
  for (std::size_t i = 0; i < a.level_values.size(); ++i)
    EXPECT_EQ(a.level_values[i], b.level_values[i]);
}

TEST(PlanReplay, ApproxBitIdenticalToPerTermPlanningLevels0To2) {
  const ch::NoisyCircuit nc = fig4_workload(16, 3);
  for (std::size_t level = 0; level <= 2; ++level) {
    const ApproxResult replan = approximate_fidelity(nc, 0, 0, tn_opts(level, false, 1));
    const ApproxResult reuse = approximate_fidelity(nc, 0, 0, tn_opts(level, true, 1));
    expect_same_bits(replan, reuse);
    if (level >= 1) {
      // 2 plans (top/bottom layer), every contraction past the first pair
      // replays a cached plan.
      EXPECT_EQ(reuse.contract_stats.plans_compiled, 2u);
      EXPECT_EQ(reuse.contract_stats.plan_executions, reuse.contractions);
      EXPECT_EQ(reuse.contract_stats.plan_reuse_hits, reuse.contractions - 2);
    }
  }
}

TEST(PlanReplay, ApproxBitIdenticalAcrossThreadCounts) {
  const ch::NoisyCircuit nc = fig4_workload(16, 3);
  const ApproxResult serial = approximate_fidelity(nc, 0, 0, tn_opts(2, true, 1));
  const ApproxResult threaded = approximate_fidelity(nc, 0, 0, tn_opts(2, true, 4));
  expect_same_bits(serial, threaded);
  // Per-worker sessions replan nothing: stats are partition-independent.
  EXPECT_EQ(threaded.contract_stats.plans_compiled, 2u);
  EXPECT_EQ(threaded.contract_stats.plan_executions, serial.contract_stats.plan_executions);
}

TEST(PlanReplay, TrajectoriesTnReplayMatchesStateVectorSampling) {
  // TN trajectories replay one plan per sample; the sampled unitary draws
  // are backend-independent, so the same seed through the state-vector
  // backend evaluates the same trajectories -- means must agree to
  // numerical precision, and the replay path must stay bit-identical
  // across thread counts.
  const qc::Circuit circuit = bench::qaoa(9, 1, 5);
  const ch::NoisyCircuit nc =
      bench::insert_noises(circuit, 3, bench::depolarizing_noise(0.02), 17);
  EvalOptions tn_eval, sv_eval;
  tn_eval.backend = EvalOptions::Backend::TensorNetwork;
  sv_eval.backend = EvalOptions::Backend::StateVector;
  sim::ParallelOptions serial, quad;
  serial.threads = 1;
  quad.threads = 4;
  const sim::TrajectoryResult tn_run = trajectories_tn(nc, 0, 0, 200, 7, serial, tn_eval);
  const sim::TrajectoryResult sv_run = trajectories_tn(nc, 0, 0, 200, 7, serial, sv_eval);
  EXPECT_NEAR(tn_run.mean, sv_run.mean, 1e-9);
  const sim::TrajectoryResult threaded = trajectories_tn(nc, 0, 0, 200, 7, quad, tn_eval);
  EXPECT_EQ(tn_run.mean, threaded.mean);
  EXPECT_EQ(tn_run.std_error, threaded.std_error);
}

TEST(PlanReplay, ApproxAgreesWithStateVectorReference) {
  // Same workload through the exact state-vector backend: the plan-replay
  // TN value must agree to numerical precision (not bitwise -- different
  // arithmetic order).
  const ch::NoisyCircuit nc = fig4_workload(9, 2);
  ApproxOptions sv = tn_opts(2, true, 1);
  sv.eval.backend = EvalOptions::Backend::StateVector;
  const ApproxResult tn_result = approximate_fidelity(nc, 0, 0, tn_opts(2, true, 1));
  const ApproxResult sv_result = approximate_fidelity(nc, 0, 0, sv);
  EXPECT_NEAR(tn_result.value, sv_result.value, 1e-9);
}

}  // namespace
}  // namespace noisim::core
