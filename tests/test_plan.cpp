// Tests for the plan/execute contraction engine: plan determinism,
// replay equivalence (including the Algorithm-1 substitution path), and
// MO/TO surfacing at plan time.
#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <thread>

#include "bench_support/generators.hpp"
#include "bench_support/harness.hpp"
#include "core/approx.hpp"
#include "core/circuit_network.hpp"
#include "core/trajectories_tn.hpp"
#include "tn/contractor.hpp"
#include "tn/plan.hpp"

namespace noisim::tn {
namespace {

using tsr::Tensor;

Tensor random_tensor(std::vector<std::size_t> shape, std::mt19937_64& rng) {
  Tensor t(std::move(shape));
  std::normal_distribution<double> gauss;
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = cplx{gauss(rng), gauss(rng)};
  return t;
}

/// The ladder network from the contractor tests: two rails with rungs,
/// nontrivial enough that greedy ordering makes real choices.
Network ladder_network(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Network net;
  std::vector<EdgeId> rail_a, rail_b, rungs;
  for (int i = 0; i < 5; ++i) {
    rail_a.push_back(net.new_edge());
    rail_b.push_back(net.new_edge());
  }
  for (int i = 0; i < 5; ++i) rungs.push_back(net.new_edge());
  net.add_node(random_tensor({2, 2}, rng), {rail_a[0], rail_b[0]});
  for (int i = 0; i < 4; ++i) {
    net.add_node(random_tensor({2, 2, 2}, rng), {rail_a[i], rail_a[i + 1], rungs[i]});
    net.add_node(random_tensor({2, 2, 2}, rng), {rail_b[i], rail_b[i + 1], rungs[i]});
  }
  net.add_node(random_tensor({2, 2, 2}, rng), {rail_a[4], rail_b[4], rungs[4]});
  net.add_node(random_tensor({2}, rng), {rungs[4]});
  return net;
}

bool same_bits(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;
  return true;
}

TEST(Plan, SameTopologyCompilesToIdenticalPlans) {
  // Different tensor *contents*, same topology: plans must be identical.
  const Network net_a = ladder_network(1);
  const Network net_b = ladder_network(99);
  for (OrderStrategy strat : {OrderStrategy::Greedy, OrderStrategy::Sequential}) {
    ContractOptions opts;
    opts.strategy = strat;
    const ContractionPlan pa = ContractionPlan::compile(net_a, opts);
    const ContractionPlan pb = ContractionPlan::compile(net_b, opts);
    EXPECT_EQ(pa.fingerprint(), pb.fingerprint());
    EXPECT_EQ(pa.steps().size(), net_a.num_nodes() - 1);
  }
}

TEST(Plan, ReplayMatchesContractNetworkBitwise) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Network net = ladder_network(seed);
    for (OrderStrategy strat : {OrderStrategy::Greedy, OrderStrategy::Sequential}) {
      ContractOptions opts;
      opts.strategy = strat;
      const Tensor eager = contract_network(net, opts);
      const ContractionPlan plan = ContractionPlan::compile(net, opts);
      PlanWorkspace ws;
      // Replaying twice through one workspace must also be stable.
      const Tensor once = plan.execute(net, ws);
      const Tensor twice = plan.execute(net, ws);
      EXPECT_TRUE(same_bits(eager, once));
      EXPECT_TRUE(same_bits(once, twice));
    }
  }
}

TEST(Plan, ReplaysAgainstSubstitutedContents) {
  // Plan compiled from one instance, replayed against another instance of
  // the same topology: must match planning that instance from scratch.
  const Network plan_net = ladder_network(7);
  const Network other = ladder_network(8);
  const ContractionPlan plan = ContractionPlan::compile(plan_net);
  PlanWorkspace ws;
  std::vector<const Tensor*> inputs;
  for (std::size_t i = 0; i < other.num_nodes(); ++i) inputs.push_back(&other.node(i).tensor);
  const Tensor replayed = plan.execute(inputs, ws);
  const Tensor eager = contract_network(other);
  EXPECT_TRUE(same_bits(eager, replayed));
}

TEST(Plan, StatsCountCompilationsAndReuse) {
  const Network net = ladder_network(3);
  ContractStats stats;
  const ContractionPlan plan = ContractionPlan::compile(net, {}, &stats);
  EXPECT_EQ(stats.plans_compiled, 1u);
  EXPECT_EQ(stats.plan_executions, 0u);
  PlanWorkspace ws;
  plan.execute(net, ws, &stats);
  plan.execute(net, ws, &stats);
  plan.execute(net, ws, &stats);
  EXPECT_EQ(stats.plan_executions, 3u);
  EXPECT_EQ(stats.plan_reuse_hits, 2u);
  EXPECT_EQ(stats.num_pairwise, 3 * plan.steps().size());
  EXPECT_GE(stats.peak_elems, 1u);
}

TEST(Plan, ContractNetworkReportsPlanStats) {
  const Network net = ladder_network(4);
  ContractStats stats;
  contract_network(net, {}, &stats);
  EXPECT_EQ(stats.plans_compiled, 1u);
  EXPECT_EQ(stats.plan_executions, 1u);
  EXPECT_EQ(stats.plan_reuse_hits, 0u);
}

TEST(Plan, WorkspaceAccountingIsBounded) {
  const Network net = ladder_network(5);
  const ContractionPlan plan = ContractionPlan::compile(net);
  // The liveness-packed arena can never beat the largest intermediate but
  // must stay below the sum of all step outputs (regions are recycled).
  std::size_t total = 0;
  for (const PlanStep& s : plan.steps()) total += s.out_elems;
  EXPECT_GE(plan.workspace_elems(), plan.peak_elems());
  EXPECT_LT(plan.workspace_elems(), total);
}

TEST(Plan, WorkspaceBudgetThrowsMemoryOut) {
  const Network net = ladder_network(6);
  ContractOptions opts;
  opts.max_workspace_elems = 2;  // far below any real arena
  EXPECT_THROW(ContractionPlan::compile(net, opts), MemoryOutError);
}

Network over_budget_network(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Network net;
  std::vector<EdgeId> open_edges;
  EdgeId spine_prev = net.new_edge();
  net.add_node(random_tensor({2}, rng), {spine_prev});
  for (int i = 0; i < 20; ++i) {
    const EdgeId spine_next = net.new_edge();
    const EdgeId leaf = net.new_edge();
    net.add_node(random_tensor({2, 2, 2}, rng), {spine_prev, spine_next, leaf});
    open_edges.push_back(leaf);
    spine_prev = spine_next;
  }
  net.add_node(random_tensor({2}, rng), {spine_prev});
  return net;
}

TEST(Plan, PlanTimeMemoryOutMapsToMO) {
  // MO now surfaces while *planning* (before any arithmetic); the harness
  // must still map it to the paper's "MO" table entry.
  const Network net = over_budget_network(10);
  ContractOptions opts;
  opts.max_tensor_elems = 1 << 10;
  EXPECT_THROW(ContractionPlan::compile(net, opts), MemoryOutError);
  const bench::RunOutcome out = bench::run_guarded([&] {
    ContractionPlan::compile(net, opts);
    return 0.0;
  });
  EXPECT_EQ(out.status, bench::RunOutcome::Status::MemoryOut);
  EXPECT_EQ(bench::format_time(out), "MO");
}

TEST(Plan, PlanTimeTimeoutMapsToTO) {
  const Network net = ladder_network(11);
  ContractOptions opts;
  opts.timeout_seconds = 1e-12;
  EXPECT_THROW(ContractionPlan::compile(net, opts), TimeoutError);
  const bench::RunOutcome out = bench::run_guarded([&] {
    ContractionPlan::compile(net, opts);
    return 0.0;
  });
  EXPECT_EQ(out.status, bench::RunOutcome::Status::Timeout);
  EXPECT_EQ(bench::format_time(out), "TO");
}

// --- contraction-order portfolio ------------------------------------------

/// A 6x6 one-round QAOA amplitude network: ~100 nodes, wide enough that
/// the portfolio's non-greedy orders make real choices and a compile does
/// measurable work (which the bounded-deadline test below relies on).
Network qaoa_amplitude_network() {
  const qc::Circuit c = bench::qaoa(36, 1, 7);
  return core::amplitude_network(c.num_qubits(), c.gates(), 0, 0);
}

/// Every concrete (non-Auto) strategy, for the forced-subset loops below.
const OrderStrategy kAllConcreteStrategies[] = {
    OrderStrategy::Greedy,  OrderStrategy::Sequential,  OrderStrategy::PairwiseRecursive,
    OrderStrategy::Bracket, OrderStrategy::Alternating, OrderStrategy::RandomGreedy,
};

TEST(Portfolio, RepeatedCompilesAreFingerprintIdentical) {
  // The portfolio is pure in topology + options: no wall-clock or RNG
  // entropy may leak into the selection.
  const Network net = qaoa_amplitude_network();
  const ContractOptions opts;  // Auto with the portfolio on by default.
  const ContractionPlan first = ContractionPlan::compile(net, opts);
  EXPECT_NE(first.chosen_strategy(), OrderStrategy::Auto);
  for (int i = 0; i < 3; ++i) {
    const ContractionPlan again = ContractionPlan::compile(net, opts);
    EXPECT_EQ(first.fingerprint(), again.fingerprint());
    EXPECT_EQ(first.chosen_strategy(), again.chosen_strategy());
  }
}

TEST(Portfolio, ConcurrentCompilesAreFingerprintIdentical) {
  const Network net = qaoa_amplitude_network();
  const ContractOptions opts;
  const std::string expect = ContractionPlan::compile(net, opts).fingerprint();
  for (std::size_t nthreads : {2u, 5u}) {
    std::vector<std::string> got(nthreads);
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < nthreads; ++t)
      pool.emplace_back(
          [&, t] { got[t] = ContractionPlan::compile(net, opts).fingerprint(); });
    for (std::thread& th : pool) th.join();
    for (const std::string& fp : got) EXPECT_EQ(fp, expect);
  }
}

TEST(Portfolio, NeverKeepsMoreFlopsThanGreedy) {
  // Greedy is in the default subset, so the kept-cheapest rule can never
  // select a schedule costlier than the greedy ladder's.
  std::vector<Network> nets;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) nets.push_back(ladder_network(seed));
  nets.push_back(qaoa_amplitude_network());
  for (const Network& net : nets) {
    ContractOptions greedy_opts;
    greedy_opts.strategy = OrderStrategy::Greedy;
    const ContractionPlan greedy = ContractionPlan::compile(net, greedy_opts);
    const ContractionPlan portfolio = ContractionPlan::compile(net);
    EXPECT_LE(portfolio.total_flops(), greedy.total_flops());
  }
}

TEST(Portfolio, SingletonSubsetMatchesDirectStrategyBitwise) {
  // Auto with portfolio_strategies = {s} must be indistinguishable from a
  // direct strategy-s compile: same fingerprint, same replayed bits.
  const Network net = ladder_network(31);
  for (OrderStrategy s : kAllConcreteStrategies) {
    ContractOptions direct;
    direct.strategy = s;
    ContractOptions forced;
    forced.portfolio_strategies = {s};
    const ContractionPlan direct_plan = ContractionPlan::compile(net, direct);
    const ContractionPlan forced_plan = ContractionPlan::compile(net, forced);
    EXPECT_EQ(direct_plan.fingerprint(), forced_plan.fingerprint())
        << order_strategy_name(s);
    EXPECT_EQ(direct_plan.chosen_strategy(), s);
    EXPECT_EQ(forced_plan.chosen_strategy(), s);
    // Both replays must match the eager contraction bit for bit.
    const Tensor eager = contract_network(net, direct);
    PlanWorkspace ws;
    EXPECT_TRUE(same_bits(eager, direct_plan.execute(net, ws))) << order_strategy_name(s);
    EXPECT_TRUE(same_bits(eager, forced_plan.execute(net, ws))) << order_strategy_name(s);
  }
}

TEST(Portfolio, StatsRecordChosenStrategyAndCandidateFlops) {
  const Network net = ladder_network(32);
  ContractStats stats;
  const ContractionPlan plan = ContractionPlan::compile(net, {}, &stats);
  EXPECT_EQ(stats.plans_compiled, 1u);
  const std::size_t winner = static_cast<std::size_t>(plan.chosen_strategy());
  EXPECT_EQ(stats.strategy_chosen[winner], 1u);
  // Every surviving portfolio attempt records its candidate cost, and the
  // winner's recorded cost is exactly the kept schedule's.
  EXPECT_EQ(stats.strategy_flops[winner], plan.total_flops());
  std::size_t attempts = 0;
  for (std::size_t s = 0; s < kNumOrderStrategies; ++s)
    if (stats.strategy_flops[s] != 0) ++attempts;
  EXPECT_GE(attempts, 2u);  // more than one strategy actually ran
  // A direct (non-portfolio) compile records exactly its own strategy.
  ContractStats direct_stats;
  ContractOptions direct;
  direct.strategy = OrderStrategy::Sequential;
  const ContractionPlan seq = ContractionPlan::compile(net, direct, &direct_stats);
  const std::size_t si = static_cast<std::size_t>(OrderStrategy::Sequential);
  EXPECT_EQ(direct_stats.strategy_chosen[si], 1u);
  EXPECT_EQ(direct_stats.strategy_flops[si], seq.total_flops());
}

TEST(Portfolio, TinyDeadlineRaisesTimeoutWithinBoundedLatency) {
  // The planning deadline is polled inside every strategy's inner loop, so
  // an already-expired deadline must surface promptly even on a network
  // where a full portfolio compile does real work -- not after the current
  // strategy (or the whole portfolio) finishes.
  const Network net = qaoa_amplitude_network();
  ContractOptions opts;
  opts.timeout_seconds = 1e-9;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(ContractionPlan::compile(net, opts), TimeoutError);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  // Generous bound: orders of magnitude below a full compile of this
  // network but far above any single inner-loop iteration.
  EXPECT_LT(elapsed, 2.0);
}

/// Random variant tensors for the ladder's varying slots and a helper that
/// checks a batched replay against per-term replays bit for bit.
void expect_batched_matches_per_term(const Network& net, const ContractionPlan& plan,
                                     const BatchedPlan& bplan,
                                     const std::vector<std::size_t>& vslots,
                                     const std::vector<std::vector<Tensor>>& variants,
                                     const std::vector<std::vector<std::size_t>>& choice) {
  const std::size_t k = choice.size();
  const std::size_t V = vslots.size();
  std::vector<const Tensor*> varying(k * V);
  for (std::size_t t = 0; t < k; ++t)
    for (std::size_t v = 0; v < V; ++v) varying[t * V + v] = &variants[v][choice[t][v]];
  std::vector<const Tensor*> shared;
  for (std::size_t i = 0; i < net.num_nodes(); ++i) shared.push_back(&net.node(i).tensor);

  PlanWorkspace bws;
  const Tensor batched = bplan.execute(shared, varying, k, bws);
  ASSERT_EQ(batched.dim(0), k);

  PlanWorkspace ws;
  const std::size_t out_elems = batched.size() / k;
  for (std::size_t t = 0; t < k; ++t) {
    std::vector<const Tensor*> inputs = shared;
    for (std::size_t v = 0; v < V; ++v) inputs[vslots[v]] = varying[t * V + v];
    const Tensor ref = plan.execute(inputs, ws);
    ASSERT_EQ(ref.size(), out_elems);
    for (std::size_t e = 0; e < out_elems; ++e)
      ASSERT_EQ(ref[e], batched[t * out_elems + e]) << "term " << t << " element " << e;
  }
}

TEST(BatchedPlan, MatchesPerTermReplayBitwise) {
  std::mt19937_64 rng(77);
  const Network net = ladder_network(21);
  const ContractionPlan plan = ContractionPlan::compile(net);

  // Vary three nodes (two leaves, one rung tensor), 3 declared variants
  // each; replay 7 of a capacity-8 batch with repeated and fresh variants
  // in an order that exercises row sharing and the per-term skip.
  const std::vector<std::size_t> vslots{0, 3, 6};
  std::vector<std::vector<Tensor>> variants;
  for (std::size_t slot : vslots) {
    std::vector<Tensor> vs;
    for (int i = 0; i < 3; ++i)
      vs.push_back(random_tensor(net.node(slot).tensor.shape(), rng));
    variants.push_back(std::move(vs));
  }
  const std::vector<std::size_t> counts{3, 3, 3};
  const BatchedPlan bplan = plan.compile_batched(vslots, 8, {}, nullptr, counts);

  const std::vector<std::vector<std::size_t>> choice{{0, 0, 0}, {1, 0, 0}, {1, 2, 0},
                                                     {0, 0, 0}, {2, 2, 2}, {1, 0, 0},
                                                     {0, 1, 2}};
  expect_batched_matches_per_term(net, plan, bplan, vslots, variants, choice);
}

TEST(BatchedPlan, MatchesWithoutVariantCountPromise) {
  // No variant counts: every varying buffer is capacity-sized and most of
  // the schedule goes through the sequential pass -- still bit-identical.
  std::mt19937_64 rng(31);
  const Network net = ladder_network(22);
  const ContractionPlan plan = ContractionPlan::compile(net);
  const std::vector<std::size_t> vslots{2, 9};
  std::vector<std::vector<Tensor>> variants;
  for (std::size_t slot : vslots) {
    std::vector<Tensor> vs;
    for (int i = 0; i < 4; ++i)
      vs.push_back(random_tensor(net.node(slot).tensor.shape(), rng));
    variants.push_back(std::move(vs));
  }
  const BatchedPlan bplan = plan.compile_batched(vslots, 5);
  const std::vector<std::vector<std::size_t>> choice{{0, 1}, {3, 1}, {0, 1}, {2, 2}};
  expect_batched_matches_per_term(net, plan, bplan, vslots, variants, choice);
}

TEST(BatchedPlan, SingleTermBatchMatches) {
  std::mt19937_64 rng(41);
  const Network net = ladder_network(23);
  const ContractionPlan plan = ContractionPlan::compile(net);
  const std::vector<std::size_t> vslots{4};
  std::vector<std::vector<Tensor>> variants{{random_tensor(net.node(4).tensor.shape(), rng)}};
  const BatchedPlan bplan = plan.compile_batched(vslots, 3, {}, nullptr,
                                                 std::vector<std::size_t>{1});
  expect_batched_matches_per_term(net, plan, bplan, vslots, variants, {{0}});
}

TEST(BatchedPlan, WorkspaceBudgetIsBatchAware) {
  const Network net = ladder_network(24);
  const ContractionPlan unbounded = ContractionPlan::compile(net);
  ContractOptions opts;
  opts.max_workspace_elems = unbounded.workspace_elems();

  // The per-term plan fits its own arena exactly; a capacity-1 "batch" has
  // identical buffer sizes and must also fit.
  const ContractionPlan plan = ContractionPlan::compile(net, opts);
  const std::vector<std::size_t> vslots{0, 3, 6, 9};
  (void)plan.compile_batched(vslots, 1, opts);

  // A real batch scales the varying buffers and keeps sequential-pass
  // inputs alive, so the same budget must report MO at compile time.
  EXPECT_THROW(plan.compile_batched(vslots, 8, opts), MemoryOutError);
  const bench::RunOutcome out = bench::run_guarded([&] {
    plan.compile_batched(vslots, 8, opts);
    return 0.0;
  });
  EXPECT_EQ(out.status, bench::RunOutcome::Status::MemoryOut);
  EXPECT_EQ(bench::format_time(out), "MO");
}

TEST(BatchedPlan, RejectsMoreVariantsThanDeclared) {
  std::mt19937_64 rng(51);
  const Network net = ladder_network(25);
  const ContractionPlan plan = ContractionPlan::compile(net);
  const std::vector<std::size_t> vslots{0};
  const BatchedPlan bplan = plan.compile_batched(vslots, 4, {}, nullptr,
                                                 std::vector<std::size_t>{1});
  std::vector<const Tensor*> shared;
  for (std::size_t i = 0; i < net.num_nodes(); ++i) shared.push_back(&net.node(i).tensor);
  const Tensor v0 = random_tensor(net.node(0).tensor.shape(), rng);
  const Tensor v1 = random_tensor(net.node(0).tensor.shape(), rng);
  std::vector<const Tensor*> varying{&v0, &v1};  // 2 distinct, 1 declared
  PlanWorkspace ws;
  EXPECT_THROW(bplan.execute(shared, varying, 2, ws), LinalgError);
}

TEST(BatchedPlan, StatsCountTermsAndActualKernels) {
  std::mt19937_64 rng(61);
  const Network net = ladder_network(26);
  const ContractionPlan plan = ContractionPlan::compile(net);
  const std::vector<std::size_t> vslots{0};
  std::vector<Tensor> vs{random_tensor(net.node(0).tensor.shape(), rng),
                         random_tensor(net.node(0).tensor.shape(), rng)};
  const BatchedPlan bplan = plan.compile_batched(vslots, 4, {}, nullptr,
                                                 std::vector<std::size_t>{2});
  std::vector<const Tensor*> shared;
  for (std::size_t i = 0; i < net.num_nodes(); ++i) shared.push_back(&net.node(i).tensor);
  std::vector<const Tensor*> varying{&vs[0], &vs[1], &vs[0], &vs[1]};
  PlanWorkspace ws;
  ContractStats stats;
  bplan.execute(shared, varying, 4, ws, &stats);
  EXPECT_EQ(stats.plan_executions, 4u);
  EXPECT_EQ(stats.plan_reuse_hits, 3u);
  // Only 2 distinct variants: shared rows / skips mean strictly fewer
  // kernel calls than 4 full replays, and flops/bytes record actual work.
  EXPECT_LT(stats.num_pairwise, 4 * plan.steps().size());
  EXPECT_GT(stats.num_pairwise, 0u);
  EXPECT_GT(stats.flops, 0u);
  EXPECT_GT(stats.bytes_moved, 0u);
  // A second replay through the same workspace is a reuse hit per term.
  bplan.execute(shared, varying, 4, ws, &stats);
  EXPECT_EQ(stats.plan_executions, 8u);
  EXPECT_EQ(stats.plan_reuse_hits, 7u);
}

TEST(Plan, PerTermExecuteRecordsFlopsAndBytes) {
  const Network net = ladder_network(27);
  ContractStats stats;
  const ContractionPlan plan = ContractionPlan::compile(net, {}, &stats);
  PlanWorkspace ws;
  plan.execute(net, ws, &stats);
  EXPECT_EQ(stats.flops, plan.total_flops());
  EXPECT_EQ(stats.bytes_moved, plan.total_bytes());
  plan.execute(net, ws, &stats);
  EXPECT_EQ(stats.flops, 2 * plan.total_flops());
  EXPECT_EQ(stats.bytes_moved, 2 * plan.total_bytes());
}

}  // namespace
}  // namespace noisim::tn

namespace noisim::core {
namespace {

/// Fig. 4 workload, scaled to test size: hardware-grid QAOA with realistic
/// injected noise, evaluated through the tensor-network backend.
ch::NoisyCircuit fig4_workload(int n, std::size_t noises) {
  const qc::Circuit circuit = bench::qaoa(n, 1, 77);
  return bench::insert_noises(circuit, noises, bench::realistic_noise(), 500 + noises);
}

ApproxOptions tn_opts(std::size_t level, bool reuse, std::size_t threads,
                      std::size_t batch_terms = 1) {
  ApproxOptions opts;
  opts.level = level;
  opts.threads = threads;
  opts.reuse_plans = reuse;
  opts.batch_terms = batch_terms;
  opts.eval.backend = EvalOptions::Backend::TensorNetwork;
  return opts;
}

void expect_same_bits(const ApproxResult& a, const ApproxResult& b) {
  EXPECT_EQ(a.raw.real(), b.raw.real());
  EXPECT_EQ(a.raw.imag(), b.raw.imag());
  ASSERT_EQ(a.level_values.size(), b.level_values.size());
  for (std::size_t i = 0; i < a.level_values.size(); ++i)
    EXPECT_EQ(a.level_values[i], b.level_values[i]);
}

TEST(PlanReplay, ApproxBitIdenticalToPerTermPlanningLevels0To2) {
  const ch::NoisyCircuit nc = fig4_workload(16, 3);
  for (std::size_t level = 0; level <= 2; ++level) {
    const ApproxResult replan = approximate_fidelity(nc, 0, 0, tn_opts(level, false, 1));
    const ApproxResult reuse = approximate_fidelity(nc, 0, 0, tn_opts(level, true, 1));
    expect_same_bits(replan, reuse);
    if (level >= 1) {
      // 2 plans (top/bottom layer), every contraction past the first pair
      // replays a cached plan.
      EXPECT_EQ(reuse.contract_stats.plans_compiled, 2u);
      EXPECT_EQ(reuse.contract_stats.plan_executions, reuse.contractions);
      EXPECT_EQ(reuse.contract_stats.plan_reuse_hits, reuse.contractions - 2);
    }
  }
}

TEST(PlanReplay, ApproxBitIdenticalAcrossThreadCounts) {
  const ch::NoisyCircuit nc = fig4_workload(16, 3);
  const ApproxResult serial = approximate_fidelity(nc, 0, 0, tn_opts(2, true, 1));
  const ApproxResult threaded = approximate_fidelity(nc, 0, 0, tn_opts(2, true, 4));
  expect_same_bits(serial, threaded);
  // Per-worker sessions replan nothing: stats are partition-independent.
  EXPECT_EQ(threaded.contract_stats.plans_compiled, 2u);
  EXPECT_EQ(threaded.contract_stats.plan_executions, serial.contract_stats.plan_executions);
}

TEST(PlanReplay, TrajectoriesTnReplayMatchesStateVectorSampling) {
  // TN trajectories replay one plan per sample; the sampled unitary draws
  // are backend-independent, so the same seed through the state-vector
  // backend evaluates the same trajectories -- means must agree to
  // numerical precision, and the replay path must stay bit-identical
  // across thread counts.
  const qc::Circuit circuit = bench::qaoa(9, 1, 5);
  const ch::NoisyCircuit nc =
      bench::insert_noises(circuit, 3, bench::depolarizing_noise(0.02), 17);
  EvalOptions tn_eval, sv_eval;
  tn_eval.backend = EvalOptions::Backend::TensorNetwork;
  sv_eval.backend = EvalOptions::Backend::StateVector;
  sim::ParallelOptions serial, quad;
  serial.threads = 1;
  quad.threads = 4;
  const sim::TrajectoryResult tn_run = trajectories_tn(nc, 0, 0, 200, 7, serial, tn_eval);
  const sim::TrajectoryResult sv_run = trajectories_tn(nc, 0, 0, 200, 7, serial, sv_eval);
  EXPECT_NEAR(tn_run.mean, sv_run.mean, 1e-9);
  const sim::TrajectoryResult threaded = trajectories_tn(nc, 0, 0, 200, 7, quad, tn_eval);
  EXPECT_EQ(tn_run.mean, threaded.mean);
  EXPECT_EQ(tn_run.std_error, threaded.std_error);
}

TEST(PlanReplay, ApproxAgreesWithStateVectorReference) {
  // Same workload through the exact state-vector backend: the plan-replay
  // TN value must agree to numerical precision (not bitwise -- different
  // arithmetic order).
  const ch::NoisyCircuit nc = fig4_workload(9, 2);
  ApproxOptions sv = tn_opts(2, true, 1);
  sv.eval.backend = EvalOptions::Backend::StateVector;
  const ApproxResult tn_result = approximate_fidelity(nc, 0, 0, tn_opts(2, true, 1));
  const ApproxResult sv_result = approximate_fidelity(nc, 0, 0, sv);
  EXPECT_NEAR(tn_result.value, sv_result.value, 1e-9);
}

/// The skeleton approximate_fidelity / trajectories_tn contract has the
/// same topology as the circuit with identity placeholders at the noise
/// sites, so its per-term plan arena can be computed independently -- used
/// by the workspace-budget tests below to pick budgets the per-term path
/// fits exactly.
std::size_t skeleton_arena_elems(const ch::NoisyCircuit& nc, bool conjugate,
                                 const EvalOptions& eval) {
  std::vector<qc::Gate> gates;
  for (const ch::Op& op : nc.ops()) {
    if (const qc::Gate* g = std::get_if<qc::Gate>(&op)) {
      gates.push_back(*g);
      continue;
    }
    const ch::NoiseOp& noise = std::get<ch::NoiseOp>(op);
    gates.push_back(noise.num_qubits() == 1
                        ? qc::u1q(noise.qubit, la::Matrix::identity(2))
                        : qc::u2q(noise.qubit, noise.qubit2, la::Matrix::identity(4)));
  }
  const tn::Network net = amplitude_network(nc.num_qubits(), gates, 0, 0, conjugate);
  return tn::ContractionPlan::compile(net, eval.tn).workspace_elems();
}

TEST(BatchedApprox, BitIdenticalAcrossBatchSizesLevels0To2) {
  const ch::NoisyCircuit nc = fig4_workload(16, 3);
  for (std::size_t level = 0; level <= 2; ++level) {
    const ApproxResult per_term = approximate_fidelity(nc, 0, 0, tn_opts(level, true, 1, 1));
    // Batch sizes that exceed, divide, and do NOT divide the term count
    // (level 2 has 37 terms), so tail batches are exercised.
    for (const std::size_t batch : {2, 7, 32}) {
      const ApproxResult batched =
          approximate_fidelity(nc, 0, 0, tn_opts(level, true, 1, batch));
      expect_same_bits(per_term, batched);
      EXPECT_EQ(batched.contractions, per_term.contractions);
    }
  }
}

TEST(BatchedApprox, BitIdenticalAcrossThreadCounts) {
  const ch::NoisyCircuit nc = fig4_workload(16, 3);
  const ApproxResult serial = approximate_fidelity(nc, 0, 0, tn_opts(2, true, 1, 7));
  const ApproxResult threaded = approximate_fidelity(nc, 0, 0, tn_opts(2, true, 4, 7));
  expect_same_bits(serial, threaded);
}

TEST(BatchedApprox, StatsCountBatchedCompilesAndReplays) {
  const ch::NoisyCircuit nc = fig4_workload(16, 3);
  const ApproxResult r = approximate_fidelity(nc, 0, 0, tn_opts(1, true, 1, 32));
  // 2 per-term plans (top/bottom) + 2 batched plans compiled on top.
  EXPECT_EQ(r.contract_stats.plans_compiled, 4u);
  EXPECT_EQ(r.contract_stats.plan_executions, r.contractions);
  EXPECT_EQ(r.contract_stats.plan_reuse_hits, r.contractions - 2);
  EXPECT_GT(r.contract_stats.flops, 0u);
  EXPECT_GT(r.contract_stats.bytes_moved, 0u);
  EXPECT_GE(r.eval_seconds, 0.0);
  EXPECT_GT(r.plan_seconds, 0.0);
}

TEST(BatchedApprox, WorkspaceBudgetTripsOnlyTheBatchedPath) {
  const ch::NoisyCircuit nc = fig4_workload(16, 3);
  // Single greedy weight so budgeted and unbudgeted compiles choose the
  // same schedule; budget = exactly the per-term arena of the two layers.
  ApproxOptions base = tn_opts(2, true, 1, 1);
  base.eval.tn.greedy_cost_weights = {1.0};
  base.eval.tn.max_workspace_elems = std::max(skeleton_arena_elems(nc, false, base.eval),
                                              skeleton_arena_elems(nc, true, base.eval));

  const ApproxResult per_term = approximate_fidelity(nc, 0, 0, base);
  EXPECT_TRUE(std::isfinite(per_term.value));

  // The batched arena cannot fit the per-term budget: MO surfaces at
  // batched-plan compile time and the harness maps it to the paper's "MO".
  ApproxOptions batched = base;
  batched.batch_terms = 32;
  EXPECT_THROW(approximate_fidelity(nc, 0, 0, batched), MemoryOutError);
  const bench::RunOutcome out = bench::run_guarded([&] {
    return approximate_fidelity(nc, 0, 0, batched).value;
  });
  EXPECT_EQ(out.status, bench::RunOutcome::Status::MemoryOut);
  EXPECT_EQ(bench::format_time(out), "MO");
}

TEST(BatchedTrajectories, BudgetFallbackIsBitIdenticalToBatchedSampling) {
  // trajectories_tn batches samples across each RNG chunk; when the batched
  // plan exceeds the workspace budget it falls back to per-sample replay.
  // Fallback and batched runs must produce the same estimate bit for bit --
  // which is also the direct batched-vs-per-sample equivalence check.
  const qc::Circuit circuit = bench::qaoa(9, 1, 5);
  const ch::NoisyCircuit nc =
      bench::insert_noises(circuit, 3, bench::depolarizing_noise(0.02), 17);
  EvalOptions eval;
  eval.backend = EvalOptions::Backend::TensorNetwork;
  eval.tn.greedy_cost_weights = {1.0};
  sim::ParallelOptions serial;
  serial.threads = 1;

  const sim::TrajectoryResult batched = trajectories_tn(nc, 0, 0, 200, 7, serial, eval);

  EvalOptions budgeted = eval;
  budgeted.tn.max_workspace_elems = skeleton_arena_elems(nc, false, eval);
  const sim::TrajectoryResult fallback = trajectories_tn(nc, 0, 0, 200, 7, serial, budgeted);
  EXPECT_EQ(batched.mean, fallback.mean);
  EXPECT_EQ(batched.std_error, fallback.std_error);
  EXPECT_EQ(batched.samples, fallback.samples);
}

}  // namespace
}  // namespace noisim::core
