// lint-fixture: expect(mutex-guards)
// A mutex-owning class with a plain mutable member: nothing says which lock
// protects `counter_`, so the Clang thread-safety analysis cannot check its
// accesses -- the member must be GUARDED_BY(mutex_), const, atomic, or
// carry an explicit // lint: not-guarded(<reason>) waiver.
#include <mutex>

class FixtureCounter {
 public:
  void bump() {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++counter_;
  }

 private:
  std::mutex mutex_;
  long counter_ = 0;
};
