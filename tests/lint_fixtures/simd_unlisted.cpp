// lint-fixture: expect(ffp-contract)
// Includes the shared SIMD kernel body with NO set_source_files_properties
// entry anywhere -- the TU silently compiles with the toolchain's default
// contraction setting.
#include "tensor/kernels_simd_body.inc"
