// lint-fixture: expect(env-getenv)
// Reads the environment directly instead of going through support::env_get,
// bypassing the centralized strict-validation grammar and error wording.
#include <cstdlib>

bool fixture_large_mode() {
  return std::getenv("NOISIM_BENCH_LARGE") != nullptr;
}
