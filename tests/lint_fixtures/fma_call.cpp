// lint-fixture: expect(no-fma)
// A fused multiply-add rounds once where the deterministic kernels round
// twice -- mul-then-add and fma(a, b, c) differ in the last ulp, which is
// exactly the bit-identity the scalar/SIMD contract forbids losing.
#include <cmath>

double fixture_accumulate(double a, double b, double c) {
  return std::fma(a, b, c);
}
