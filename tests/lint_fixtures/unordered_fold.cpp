// lint-fixture: expect(unordered-fold)
// Folds a sum by iterating an unordered_map directly: the visit order is
// hash order, so the floating-point accumulation differs run to run (and
// libstdc++ version to version).
#include <string>
#include <unordered_map>

double fixture_merge_totals() {
  std::unordered_map<std::string, double> totals;
  totals["a"] = 0.1;
  totals["b"] = 0.2;
  double sum = 0.0;
  for (const auto& kv : totals) sum += kv.second;
  return sum;
}
