// lint-fixture: expect(ffp-contract)
// Includes the shared SIMD kernel body while its CMake entry (see the
// fixture CMakeLists.txt next door) lacks -ffp-contract=off: the optimizer
// is free to fuse the body's mul/add intrinsics into FMA.
#include "tensor/kernels_simd_body.inc"
