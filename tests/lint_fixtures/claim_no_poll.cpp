// lint-fixture: expect(claim-loop-polls)
// A worker claim loop that never polls a RunControl: once started it cannot
// honor cancellation or deadlines -- the poll-at-claim-granularity contract
// every dispenser in the tree follows.
#include <atomic>
#include <cstddef>

void fixture_worker(std::atomic<std::size_t>& next, std::size_t num_items) {
  while (true) {
    const std::size_t item = next.fetch_add(1, std::memory_order_relaxed);
    if (item >= num_items) break;
    // ... evaluate item, with no control poll anywhere in the loop ...
  }
}
