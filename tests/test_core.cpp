// Tests for the paper's machinery: tensor permutation, SVD noise splitting,
// the doubled diagram, Algorithm 1 and the Theorem 1 bounds.
#include <gtest/gtest.h>

#include <random>

#include "channels/catalog.hpp"
#include "core/approx.hpp"
#include "core/bounds.hpp"
#include "core/circuit_network.hpp"
#include "core/doubled_network.hpp"
#include "core/superop.hpp"
#include "core/trajectories_tn.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "sim/density.hpp"

namespace noisim::core {
namespace {

qc::Circuit random_circuit(int n, int gates, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> q(0, n - 1);
  std::uniform_int_distribution<int> kind(0, 5);
  std::uniform_real_distribution<double> angle(-3.0, 3.0);
  qc::Circuit c(n);
  for (int i = 0; i < gates; ++i) {
    switch (kind(rng)) {
      case 0: c.add(qc::h(q(rng))); break;
      case 1: c.add(qc::ry(q(rng), angle(rng))); break;
      case 2: c.add(qc::rz(q(rng), angle(rng))); break;
      case 3: c.add(qc::t(q(rng))); break;
      default: {
        int a = q(rng), b = q(rng);
        if (a == b) b = (a + 1) % n;
        c.add(qc::cz(a, b));
      }
    }
  }
  return c;
}

ch::NoisyCircuit random_noisy_circuit(int n, int gates, int noises, std::uint64_t seed,
                                      double p = 0.05) {
  const qc::Circuit c = random_circuit(n, gates, seed);
  std::mt19937_64 rng(seed + 1);
  std::uniform_int_distribution<int> q(0, n - 1);
  std::uniform_int_distribution<int> model(0, 2);
  ch::NoisyCircuit nc(n);
  int placed = 0;
  const auto& gs = c.gates();
  for (std::size_t i = 0; i < gs.size(); ++i) {
    nc.add_gate(gs[i]);
    if (placed < noises && i % (gs.size() / static_cast<std::size_t>(noises) + 1) == 0) {
      switch (model(rng)) {
        case 0: nc.add_noise(q(rng), ch::depolarizing(p)); break;
        case 1: nc.add_noise(q(rng), ch::amplitude_damping(p)); break;
        default: nc.add_noise(q(rng), ch::thermal_relaxation(p, 1.0, 1.2)); break;
      }
      ++placed;
    }
  }
  return nc;
}

// --- tensor permutation -------------------------------------------------------

TEST(TensorPermutation, MatchesPaperIdentityExample) {
  // The paper's Section IV example: permuting I_4 gives the rank-1 matrix
  // with ones at the corners.
  const la::Matrix perm = tensor_permutation(la::Matrix::identity(4));
  la::Matrix want(4, 4);
  want(0, 0) = want(0, 3) = want(3, 0) = want(3, 3) = 1;
  EXPECT_TRUE(perm.approx_equal(want, 1e-14));
  EXPECT_EQ(la::svd(perm).rank(), 1u);
}

TEST(TensorPermutation, IsAnInvolution) {
  std::mt19937_64 rng(1);
  const la::Matrix m = la::random_ginibre(4, 4, rng);
  EXPECT_TRUE(tensor_permutation(tensor_permutation(m)).approx_equal(m, 1e-14));
}

TEST(TensorPermutation, PreservesFrobeniusNorm) {
  std::mt19937_64 rng(2);
  const la::Matrix m = la::random_ginibre(4, 4, rng);
  EXPECT_NEAR(tensor_permutation(m).frobenius_norm(), m.frobenius_norm(), 1e-12);
}

TEST(TensorPermutation, KroneckerProductBecomesRankOne) {
  std::mt19937_64 rng(3);
  const la::Matrix a = la::random_ginibre(2, 2, rng);
  const la::Matrix b = la::random_ginibre(2, 2, rng);
  EXPECT_EQ(la::svd(tensor_permutation(la::kron(a, b))).rank(1e-10), 1u);
}

// --- SVD noise splitting --------------------------------------------------------

class SplitCatalog : public ::testing::TestWithParam<int> {
 protected:
  ch::Channel make() const {
    switch (GetParam()) {
      case 0: return ch::depolarizing(0.02);
      case 1: return ch::amplitude_damping(0.05);
      case 2: return ch::phase_damping(0.04);
      case 3: return ch::thermal_relaxation(0.02, 1.0, 1.4);
      case 4: return ch::pauli_channel(0.01, 0.02, 0.005);
      case 5: return ch::bit_flip(0.03);
      default: return ch::identity_channel();
    }
  }
};

TEST_P(SplitCatalog, ReconstructsSuperoperator) {
  const ch::Channel c = make();
  const SplitNoise split = split_noise(c);
  EXPECT_TRUE(split.reconstruct().approx_equal(c.superoperator(), 1e-10)) << c.name();
}

TEST_P(SplitCatalog, WeightsDescendAndDominantLeads) {
  const SplitNoise split = split_noise(make());
  for (std::size_t i = 0; i + 1 < split.terms(); ++i)
    EXPECT_GE(split.weights[i], split.weights[i + 1] - 1e-12);
  // For weak noise the dominant weight approaches the identity's value 2.
  EXPECT_GT(split.weights[0], 1.5);
}

TEST_P(SplitCatalog, Lemma2DominantTermError) {
  const ch::Channel c = make();
  const SplitNoise split = split_noise(c);
  EXPECT_LE(split.dominant_term_error(), 4.0 * c.noise_rate() + 1e-9) << c.name();
}

INSTANTIATE_TEST_SUITE_P(Catalog, SplitCatalog, ::testing::Range(0, 7));

TEST(SplitNoise, IdentityChannelIsExactlyRankOne) {
  const SplitNoise split = split_noise(ch::identity_channel());
  ASSERT_GE(split.terms(), 1u);
  EXPECT_NEAR(split.weights[0], 2.0, 1e-12);
  EXPECT_TRUE(split.term(0).is_identity(1e-10));
  for (std::size_t s = 1; s < split.terms(); ++s) EXPECT_LT(split.weights[s], 1e-10);
}

TEST(SplitNoise, UnitaryChannelIsRankOne) {
  std::mt19937_64 rng(4);
  const la::Matrix u = la::random_unitary(2, rng);
  const SplitNoise split = split_noise(ch::unitary_channel(u), 1e-10);
  EXPECT_EQ(split.terms(), 1u);
  EXPECT_TRUE(split.term(0).approx_equal(la::kron(u, u.conj()), 1e-10));
}

TEST(SplitNoise, DropToleranceRemovesNegligibleTerms) {
  const SplitNoise full = split_noise(ch::depolarizing(0.01));
  EXPECT_EQ(full.terms(), 4u);
  const SplitNoise dropped = split_noise(ch::depolarizing(0.01), 0.1);
  EXPECT_EQ(dropped.terms(), 1u);
}

TEST(Lemma1, PermutationAtMostDoublesSpectralDistance) {
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const la::Matrix a = la::random_ginibre(4, 4, rng);
    const la::Matrix b = la::random_ginibre(4, 4, rng);
    la::Matrix diff = a;
    diff -= b;
    la::Matrix pdiff = tensor_permutation(a);
    pdiff -= tensor_permutation(b);
    EXPECT_LE(la::spectral_norm(pdiff), 2.0 * la::spectral_norm(diff) + 1e-9);
  }
}

// --- amplitude evaluation -------------------------------------------------------

class AmplitudeBackends : public ::testing::TestWithParam<int> {};

TEST_P(AmplitudeBackends, TnMatchesStatevector) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const int n = 4;
  const qc::Circuit c = random_circuit(n, 25, seed);
  EvalOptions sv, tn;
  sv.backend = EvalOptions::Backend::StateVector;
  tn.backend = EvalOptions::Backend::TensorNetwork;
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{9}, std::uint64_t{15}}) {
    const cplx a = amplitude(n, c.gates(), 3, v, false, sv);
    const cplx b = amplitude(n, c.gates(), 3, v, false, tn);
    EXPECT_TRUE(approx_equal(a, b, 1e-9)) << "v=" << v;
  }
}

TEST_P(AmplitudeBackends, ConjugateAmplitudeIsConjugate) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) + 40;
  const int n = 3;
  const qc::Circuit c = random_circuit(n, 15, seed);
  for (auto backend : {EvalOptions::Backend::StateVector, EvalOptions::Backend::TensorNetwork}) {
    EvalOptions opts;
    opts.backend = backend;
    const cplx normal = amplitude(n, c.gates(), 1, 6, false, opts);
    const cplx conj = amplitude(n, c.gates(), 1, 6, true, opts);
    EXPECT_TRUE(approx_equal(conj, std::conj(normal), 1e-10));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AmplitudeBackends, ::testing::Range(0, 8));

TEST(Amplitude, SimplifyPreservesValue) {
  const int n = 4;
  qc::Circuit c = random_circuit(n, 20, 123);
  std::vector<qc::Gate> gates = c.gates();
  const qc::Circuit inv = c.adjoint();
  gates.push_back(qc::z(2));
  gates.insert(gates.end(), inv.gates().begin(), inv.gates().end());

  EvalOptions plain, simplified;
  simplified.simplify = true;
  const cplx a = amplitude(n, gates, 0, 0, false, plain);
  const cplx b = amplitude(n, gates, 0, 0, false, simplified);
  EXPECT_TRUE(approx_equal(a, b, 1e-9));
}

// --- doubled diagram ------------------------------------------------------------

class DoubledDiagram : public ::testing::TestWithParam<int> {};

TEST_P(DoubledDiagram, MatchesDensityMatrixExactly) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const ch::NoisyCircuit nc = random_noisy_circuit(3, 14, 3, seed);
  const double mm = sim::exact_fidelity_mm(nc, 0, 0);
  const double tn = exact_fidelity_tn(nc, 0, 0);
  EXPECT_NEAR(tn, mm, 1e-9);
}

TEST_P(DoubledDiagram, MatchesForNonTrivialStates) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) + 70;
  const ch::NoisyCircuit nc = random_noisy_circuit(3, 12, 2, seed);
  const double mm = sim::exact_fidelity_mm(nc, 5, 6);
  const double tn = exact_fidelity_tn(nc, 5, 6);
  EXPECT_NEAR(tn, mm, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DoubledDiagram, ::testing::Range(0, 10));

TEST(DoubledDiagram, NoiselessCircuitGivesBornProbability) {
  qc::Circuit c(2);
  c.add(qc::h(0)).add(qc::cx(0, 1));
  const double f = exact_fidelity_tn(ch::NoisyCircuit(c), 0, 0b11);
  EXPECT_NEAR(f, 0.5, 1e-10);
}

// --- Algorithm 1 -----------------------------------------------------------------

class Algorithm1 : public ::testing::TestWithParam<int> {};

TEST_P(Algorithm1, FullLevelReproducesExactFidelity) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const ch::NoisyCircuit nc = random_noisy_circuit(3, 10, 3, seed, 0.08);
  const double exact = sim::exact_fidelity_mm(nc, 0, 0);
  ApproxOptions opts;
  opts.level = nc.noise_count();  // A(N) is exact
  const ApproxResult r = approximate_fidelity(nc, 0, 0, opts);
  EXPECT_NEAR(r.value, exact, 1e-9);
  EXPECT_NEAR(r.raw.imag(), 0.0, 1e-9);
}

TEST_P(Algorithm1, ErrorIsWithinTheorem1Bound) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) + 20;
  const ch::NoisyCircuit nc = random_noisy_circuit(4, 16, 4, seed, 0.03);
  const double exact = sim::exact_fidelity_mm(nc, 0, 0);
  for (std::size_t level : {0u, 1u, 2u}) {
    ApproxOptions opts;
    opts.level = level;
    const ApproxResult r = approximate_fidelity(nc, 0, 0, opts);
    EXPECT_LE(std::abs(r.value - exact), r.error_bound + 1e-12)
        << "level " << level << " bound " << r.error_bound;
  }
}

TEST_P(Algorithm1, LevelsImproveMonotonically) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) + 60;
  const ch::NoisyCircuit nc = random_noisy_circuit(3, 12, 4, seed, 0.02);
  const double exact = sim::exact_fidelity_mm(nc, 0, 0);
  ApproxOptions opts;
  opts.level = nc.noise_count();
  const ApproxResult r = approximate_fidelity(nc, 0, 0, opts);
  // |A(l) - F| decreases (weakly) with l for weak noise.
  double prev = std::abs(r.level_values[0] - exact);
  for (std::size_t l = 1; l < r.level_values.size(); ++l) {
    const double err = std::abs(r.level_values[l] - exact);
    EXPECT_LE(err, prev * 1.5 + 1e-12) << "level " << l;  // allow mild non-monotonic wiggle
    prev = err;
  }
  EXPECT_NEAR(r.level_values.back(), exact, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Algorithm1, ::testing::Range(0, 8));

TEST(Algorithm1, ContractionCountMatchesTheorem1Formula) {
  const ch::NoisyCircuit nc = random_noisy_circuit(3, 10, 4, 5, 0.02);
  for (std::size_t level : {0u, 1u, 2u}) {
    ApproxOptions opts;
    opts.level = level;
    const ApproxResult r = approximate_fidelity(nc, 0, 0, opts);
    EXPECT_DOUBLE_EQ(static_cast<double>(r.contractions),
                     contraction_count(nc.noise_count(), level));
  }
}

TEST(Algorithm1, SimplifyGivesSameAnswer) {
  const ch::NoisyCircuit nc = random_noisy_circuit(3, 12, 2, 77, 0.05);
  const ch::NoisyCircuit projected = with_ideal_output_projector(nc);
  ApproxOptions plain, reduced;
  plain.level = reduced.level = 2;
  reduced.eval.simplify = true;
  const double a = approximate_fidelity(projected, 0, 0, plain).value;
  const double b = approximate_fidelity(projected, 0, 0, reduced).value;
  EXPECT_NEAR(a, b, 1e-9);
}

TEST(Algorithm1, IdealOutputProjectorMatchesDirectFidelity) {
  // <v|E(rho)|v> with v = U|0>: compare the projector rewrite against a
  // direct density-matrix computation.
  const ch::NoisyCircuit nc = random_noisy_circuit(3, 10, 2, 31, 0.05);
  sim::Statevector v(3);
  v.apply_circuit(nc.gates_only());
  sim::DensityMatrix dm(3);
  dm.evolve(nc);
  const double direct = dm.fidelity(v.to_vector());

  const ch::NoisyCircuit projected = with_ideal_output_projector(nc);
  ApproxOptions opts;
  opts.level = nc.noise_count();
  EXPECT_NEAR(approximate_fidelity(projected, 0, 0, opts).value, direct, 1e-9);
}

TEST(Algorithm1, ProgressCallbackCountsTerms) {
  const ch::NoisyCircuit nc = random_noisy_circuit(3, 8, 3, 13, 0.02);
  std::size_t calls = 0;
  ApproxOptions opts;
  opts.level = 1;
  opts.progress = [&](std::size_t done) { calls = done; };
  approximate_fidelity(nc, 0, 0, opts);
  EXPECT_EQ(calls, 1u + 3u * nc.noise_count());
}

// --- TN trajectories --------------------------------------------------------------

TEST(TrajectoriesTn, AgreesWithExactForDepolarizing) {
  const qc::Circuit c = random_circuit(3, 12, 55);
  ch::NoisyCircuit nc(3);
  for (std::size_t i = 0; i < c.gates().size(); ++i) {
    nc.add_gate(c.gates()[i]);
    if (i == 3 || i == 8) nc.add_noise(static_cast<int>(i % 3), ch::depolarizing(0.2));
  }
  const double exact = sim::exact_fidelity_mm(nc, 0, 0);
  std::mt19937_64 rng(8);
  const sim::TrajectoryResult r = trajectories_tn(nc, 0, 0, 3000, rng);
  EXPECT_NEAR(r.mean, exact, 5.0 * r.std_error + 1e-6);
}

TEST(TrajectoriesTn, RejectsNonUnitaryMixtures) {
  ch::NoisyCircuit nc(1);
  nc.add_noise(0, ch::amplitude_damping(0.3));
  std::mt19937_64 rng(1);
  EXPECT_THROW(trajectories_tn(nc, 0, 0, 10, rng), LinalgError);
}

TEST(TrajectoriesTn, ParallelVariantIsDeterministicAndUnbiased) {
  const qc::Circuit c = random_circuit(3, 12, 55);
  ch::NoisyCircuit nc(3);
  for (std::size_t i = 0; i < c.gates().size(); ++i) {
    nc.add_gate(c.gates()[i]);
    if (i == 3 || i == 8) nc.add_noise(static_cast<int>(i % 3), ch::depolarizing(0.2));
  }
  const double exact = sim::exact_fidelity_mm(nc, 0, 0);

  sim::ParallelOptions popts;
  popts.threads = 1;
  const sim::TrajectoryResult serial = trajectories_tn(nc, 0, 0, 2000, 21, popts);
  popts.threads = 4;
  const sim::TrajectoryResult parallel = trajectories_tn(nc, 0, 0, 2000, 21, popts);

  EXPECT_EQ(parallel.mean, serial.mean);
  EXPECT_EQ(parallel.std_error, serial.std_error);
  EXPECT_NEAR(parallel.mean, exact, 5.0 * parallel.std_error + 1e-6);
}

// --- bounds ------------------------------------------------------------------------

TEST(Bounds, BinomialValues) {
  EXPECT_DOUBLE_EQ(binomial(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial(40, 40), 1.0);
  EXPECT_DOUBLE_EQ(binomial(3, 5), 0.0);
  EXPECT_NEAR(binomial(80, 2), 3160.0, 1e-9);
}

TEST(Bounds, Theorem1IsZeroAtFullLevelOrZeroNoise) {
  EXPECT_NEAR(theorem1_error_bound(10, 0.01, 10), 0.0, 1e-12);
  EXPECT_NEAR(theorem1_error_bound(10, 0.0, 1), 0.0, 1e-12);
  EXPECT_NEAR(theorem1_error_bound(0, 0.3, 0), 0.0, 1e-12);
}

TEST(Bounds, Theorem1DecreasesWithLevel) {
  double prev = theorem1_error_bound(20, 0.001, 0);
  for (std::size_t l = 1; l <= 4; ++l) {
    const double cur = theorem1_error_bound(20, 0.001, l);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Bounds, Level1AsymptoticDominatesExactBoundForSmallP) {
  // For p <= 1/(8N) the paper derives bound <= 32 sqrt(e) N^2 p^2.
  for (std::size_t n : {10u, 20u, 40u}) {
    const double p = 1.0 / (10.0 * static_cast<double>(n));
    EXPECT_LE(theorem1_error_bound(n, p, 1), level1_asymptotic_bound(n, p) + 1e-15);
  }
}

TEST(Bounds, ContractionCountFormula) {
  EXPECT_DOUBLE_EQ(contraction_count(10, 0), 2.0);
  EXPECT_DOUBLE_EQ(contraction_count(10, 1), 2.0 * (1 + 30));
  EXPECT_DOUBLE_EQ(contraction_count(10, 2), 2.0 * (1 + 30 + 45 * 9));
}

TEST(Bounds, Fig5CrossoverNearN26AtP001) {
  // At p = 0.001 ours beats trajectories up to N ~ 26 and loses by N = 40.
  const double p = 0.001;
  EXPECT_LT(contraction_count(20, 1), trajectories_samples_calibrated(20, p));
  EXPECT_LT(contraction_count(26, 1), trajectories_samples_calibrated(26, p));
  EXPECT_GT(contraction_count(40, 1), trajectories_samples_calibrated(40, p));
}

TEST(Bounds, Fig5NoCrossoverAtP0001) {
  for (std::size_t n = 10; n <= 40; n += 2)
    EXPECT_LT(contraction_count(n, 1), trajectories_samples_calibrated(n, 0.0001));
}

}  // namespace
}  // namespace noisim::core
