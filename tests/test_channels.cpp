// Tests for Kraus channels, the noise catalog and noisy circuits.
#include <gtest/gtest.h>

#include <random>

#include "channels/catalog.hpp"
#include "channels/noisy_circuit.hpp"
#include "linalg/eig.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"

namespace noisim::ch {
namespace {

la::Matrix random_density(std::size_t dim, std::mt19937_64& rng) {
  const la::Matrix g = la::random_ginibre(dim, dim, rng);
  la::Matrix rho = g * g.adjoint();
  rho *= 1.0 / rho.trace().real();
  return rho;
}

TEST(Channel, RejectsIncompleteKraus) {
  la::Matrix half = la::Matrix::identity(2);
  half *= 0.5;
  EXPECT_THROW(Channel("bad", {half}), LinalgError);
}

TEST(Channel, IdentityChannelPreservesState) {
  std::mt19937_64 rng(1);
  const la::Matrix rho = random_density(2, rng);
  EXPECT_TRUE(identity_channel().apply(rho).approx_equal(rho, 1e-12));
}

TEST(Channel, UnitaryChannelConjugates) {
  std::mt19937_64 rng(2);
  const la::Matrix u = la::random_unitary(2, rng);
  const la::Matrix rho = random_density(2, rng);
  EXPECT_TRUE(unitary_channel(u).apply(rho).approx_equal(u * rho * u.adjoint(), 1e-12));
}

class CatalogChannels : public ::testing::TestWithParam<int> {
 protected:
  Channel make() const {
    switch (GetParam()) {
      case 0: return depolarizing(0.13);
      case 1: return bit_flip(0.2);
      case 2: return phase_flip(0.07);
      case 3: return bit_phase_flip(0.11);
      case 4: return pauli_channel(0.05, 0.03, 0.08);
      case 5: return amplitude_damping(0.25);
      case 6: return generalized_amplitude_damping(0.2, 0.3);
      case 7: return phase_damping(0.15);
      case 8: return thermal_relaxation(0.01, 0.5, 0.7);
      default: return identity_channel();
    }
  }
};

TEST_P(CatalogChannels, IsCompletelyPositiveAndTracePreserving) {
  const Channel c = make();
  EXPECT_LT(c.completeness_defect(), 1e-10) << c.name();
  EXPECT_TRUE(la::is_positive_semidefinite(c.choi(), 1e-9)) << c.name();
  // Trace preservation on a random state.
  std::mt19937_64 rng(77);
  const la::Matrix rho = random_density(2, rng);
  EXPECT_NEAR(c.apply(rho).trace().real(), 1.0, 1e-10) << c.name();
}

TEST_P(CatalogChannels, SuperoperatorMatchesKrausAction) {
  const Channel c = make();
  std::mt19937_64 rng(78);
  const la::Matrix rho = random_density(2, rng);
  const la::Vector lhs = c.superoperator() * la::vec(rho);
  const la::Vector rhs = la::vec(c.apply(rho));
  EXPECT_TRUE(lhs.approx_equal(rhs, 1e-10)) << c.name();
}

TEST_P(CatalogChannels, ApplyPreservesHermiticity) {
  const Channel c = make();
  std::mt19937_64 rng(79);
  const la::Matrix out = c.apply(random_density(2, rng));
  EXPECT_TRUE(out.is_hermitian(1e-10)) << c.name();
}

INSTANTIATE_TEST_SUITE_P(AllCatalog, CatalogChannels, ::testing::Range(0, 10));

TEST(Catalog, DepolarizingActionOnMaximallyMixedIsFixed) {
  la::Matrix mixed = la::Matrix::identity(2);
  mixed *= 0.5;
  EXPECT_TRUE(depolarizing(0.3).apply(mixed).approx_equal(mixed, 1e-12));
}

TEST(Catalog, DepolarizingContractsBlochVector) {
  // rho = |0><0|; depolarizing shrinks the Bloch z component by (1 - 4p/3).
  la::Matrix rho{{1, 0}, {0, 0}};
  const double p = 0.3;
  const la::Matrix out = depolarizing(p).apply(rho);
  EXPECT_NEAR(out(0, 0).real(), 1.0 - 2.0 * p / 3.0, 1e-12);
  EXPECT_NEAR(out(1, 1).real(), 2.0 * p / 3.0, 1e-12);
}

TEST(Catalog, NoiseRateOfDepolarizingIsFourThirdsP) {
  // With the paper's own definitions ||M_E - I||_2 evaluates to 4p/3
  // (the prose claims 2p; see DESIGN.md). Pin the numeric truth.
  for (double p : {0.001, 0.01, 0.1}) {
    EXPECT_NEAR(depolarizing(p).noise_rate(), 4.0 * p / 3.0, 1e-9);
  }
}

TEST(Catalog, NoiseRateOfIdentityIsZero) {
  EXPECT_NEAR(identity_channel().noise_rate(), 0.0, 1e-12);
}

TEST(Catalog, NoiseRateGrowsWithDamping) {
  EXPECT_LT(amplitude_damping(0.01).noise_rate(), amplitude_damping(0.1).noise_rate());
  EXPECT_LT(thermal_relaxation(0.001, 1.0, 1.0).noise_rate(),
            thermal_relaxation(0.01, 1.0, 1.0).noise_rate());
}

TEST(Catalog, AmplitudeDampingDecaysExcitedState) {
  la::Matrix excited{{0, 0}, {0, 1}};
  const la::Matrix out = amplitude_damping(0.4).apply(excited);
  EXPECT_NEAR(out(0, 0).real(), 0.4, 1e-12);
  EXPECT_NEAR(out(1, 1).real(), 0.6, 1e-12);
}

TEST(Catalog, PhaseDampingKillsCoherences) {
  la::Matrix plus{{0.5, 0.5}, {0.5, 0.5}};
  const la::Matrix out = phase_damping(0.36).apply(plus);
  EXPECT_NEAR(out(0, 1).real(), 0.5 * std::sqrt(1.0 - 0.36), 1e-12);
  EXPECT_NEAR(out(0, 0).real(), 0.5, 1e-12);
}

TEST(Catalog, ThermalRelaxationMatchesT1T2Decay) {
  const double t = 0.05, t1 = 1.0, t2 = 1.3;
  const Channel c = thermal_relaxation(t, t1, t2);
  // Population decay exp(-t/T1):
  la::Matrix excited{{0, 0}, {0, 1}};
  EXPECT_NEAR(c.apply(excited)(1, 1).real(), std::exp(-t / t1), 1e-10);
  // Coherence decay exp(-t/T2):
  la::Matrix plus{{0.5, 0.5}, {0.5, 0.5}};
  EXPECT_NEAR(std::abs(c.apply(plus)(0, 1)), 0.5 * std::exp(-t / t2), 1e-10);
}

TEST(Catalog, ThermalRelaxationRejectsUnphysicalT2) {
  EXPECT_THROW(thermal_relaxation(0.1, 1.0, 2.5), LinalgError);
}

TEST(Catalog, ValidatesProbabilities) {
  EXPECT_THROW(depolarizing(-0.1), LinalgError);
  EXPECT_THROW(depolarizing(1.1), LinalgError);
  EXPECT_THROW(pauli_channel(0.5, 0.4, 0.3), LinalgError);
}

TEST(Channel, ComposeMatchesSequentialApplication) {
  std::mt19937_64 rng(3);
  const la::Matrix rho = random_density(2, rng);
  const Channel a = amplitude_damping(0.2);
  const Channel b = phase_damping(0.3);
  EXPECT_TRUE(compose(b, a).apply(rho).approx_equal(b.apply(a.apply(rho)), 1e-10));
}

TEST(Channel, UnitaryMixtureOfDepolarizing) {
  const auto mix = depolarizing(0.09).unitary_mixture();
  ASSERT_TRUE(mix.has_value());
  ASSERT_EQ(mix->probs.size(), 4u);
  EXPECT_NEAR(mix->probs[0], 0.91, 1e-12);
  EXPECT_NEAR(mix->probs[1], 0.03, 1e-12);
  for (const la::Matrix& u : mix->unitaries) EXPECT_TRUE(u.is_unitary(1e-10));
}

TEST(Channel, AmplitudeDampingIsNotAUnitaryMixture) {
  EXPECT_FALSE(amplitude_damping(0.2).unitary_mixture().has_value());
}

// --- noisy circuit -----------------------------------------------------------

TEST(NoisyCircuit, TracksNoisePositionsAndCount) {
  qc::Circuit c(2);
  c.add(qc::h(0)).add(qc::cz(0, 1));
  NoisyCircuit nc(c);
  nc.add_noise(0, depolarizing(0.01));
  nc.add_gate(qc::x(1));
  nc.add_noise(1, amplitude_damping(0.02));
  EXPECT_EQ(nc.noise_count(), 2u);
  EXPECT_EQ(nc.noise_positions(), (std::vector<std::size_t>{2, 4}));
  EXPECT_EQ(nc.gates_only().size(), 3u);
}

TEST(NoisyCircuit, MaxNoiseRate) {
  NoisyCircuit nc(1);
  nc.add_noise(0, depolarizing(0.03));
  nc.add_noise(0, depolarizing(0.3));
  EXPECT_NEAR(nc.max_noise_rate(), 0.4, 1e-9);  // 4p/3 at p = 0.3
}

TEST(NoisyCircuit, RejectsWideChannels) {
  NoisyCircuit nc(2);
  std::vector<la::Matrix> kraus{la::Matrix::identity(4)};
  EXPECT_THROW(nc.add_noise(0, Channel("wide", std::move(kraus))), LinalgError);
}

TEST(NoisyCircuit, RejectsOutOfRangeQubit) {
  NoisyCircuit nc(2);
  EXPECT_THROW(nc.add_noise(2, depolarizing(0.1)), LinalgError);
  EXPECT_THROW(nc.add_gate(qc::h(5)), LinalgError);
}

}  // namespace
}  // namespace noisim::ch
