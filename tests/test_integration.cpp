// Cross-method integration tests on the paper's benchmark families: every
// simulator in the repo must agree on the same noisy circuit, and the
// approximation ladder must behave as Theorem 1 promises on realistic
// workloads (not just random toy circuits).
#include <gtest/gtest.h>

#include <random>

#include "bench_support/generators.hpp"
#include "channels/catalog.hpp"
#include "circuit/simplify.hpp"
#include "core/approx.hpp"
#include "core/bounds.hpp"
#include "core/doubled_network.hpp"
#include "core/trajectories_tn.hpp"
#include "sim/density.hpp"
#include "sim/trajectories.hpp"
#include "tdd/tdd_sim.hpp"

namespace noisim {
namespace {

struct Workload {
  std::string name;
  ch::NoisyCircuit nc;
};

Workload make_workload(int which, std::uint64_t seed) {
  switch (which) {
    case 0: {
      const qc::Circuit c = bench::qaoa_grid(2, 3, 1, seed);
      return {"qaoa_2x3", bench::insert_noises(c, 4, bench::realistic_noise(1e-2), seed + 1)};
    }
    case 1: {
      const qc::Circuit c = bench::hf_vqe(6, seed);
      return {"hf_6", bench::insert_noises(c, 3, bench::depolarizing_noise(0.01), seed + 1)};
    }
    default: {
      const qc::Circuit c = bench::supremacy_inst(2, 3, 8, seed);
      return {"inst_2x3_8", bench::insert_noises(c, 4, bench::realistic_noise(8e-3), seed + 1)};
    }
  }
}

class CrossMethod : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CrossMethod, AllExactMethodsAgree) {
  const auto [family, seed] = GetParam();
  const Workload w = make_workload(family, static_cast<std::uint64_t>(seed));

  const double mm = sim::exact_fidelity_mm(w.nc, 0, 0);
  const double tn = core::exact_fidelity_tn(w.nc, 0, 0);
  const double tdd = tdd::exact_fidelity_tdd(w.nc, 0, 0);
  EXPECT_NEAR(tn, mm, 1e-9) << w.name;
  EXPECT_NEAR(tdd, mm, 1e-9) << w.name;

  // Full-level approximation is exact as well.
  core::ApproxOptions opts;
  opts.level = w.nc.noise_count();
  EXPECT_NEAR(core::approximate_fidelity(w.nc, 0, 0, opts).value, mm, 1e-9) << w.name;
}

TEST_P(CrossMethod, Level1WithinBoundOnBenchmarkFamilies) {
  const auto [family, seed] = GetParam();
  const Workload w = make_workload(family, static_cast<std::uint64_t>(seed) + 50);
  const double exact = sim::exact_fidelity_mm(w.nc, 0, 0);

  core::ApproxOptions opts;
  opts.level = 1;
  const core::ApproxResult r = core::approximate_fidelity(w.nc, 0, 0, opts);
  EXPECT_LE(std::abs(r.value - exact), r.error_bound + 1e-12) << w.name;
}

INSTANTIATE_TEST_SUITE_P(Families, CrossMethod,
                         ::testing::Combine(::testing::Range(0, 3), ::testing::Range(0, 4)));

TEST(Integration, IdealOutputFidelityNearOneUnderWeakNoise) {
  // The qaoa_fidelity_study scenario: fidelity vs the ideal output starts
  // near 1 and decreases monotonically with the noise count.
  const qc::Circuit circuit = bench::qaoa_grid(3, 3, 1, 5);
  double prev = 1.0;
  for (std::size_t noises : {1u, 4u, 8u}) {
    const ch::NoisyCircuit nc = core::with_ideal_output_projector(
        bench::insert_noises(circuit, noises, bench::realistic_noise(8e-3), 6));
    const double f = sim::exact_fidelity_mm(nc, 0, 0);
    EXPECT_GT(f, 0.8);
    EXPECT_LT(f, prev + 1e-9);
    prev = f;
  }
}

TEST(Integration, SimplifiedEngineMatchesPlainOnProjectedWorkload) {
  const qc::Circuit circuit = bench::qaoa_grid(2, 3, 1, 9);
  const ch::NoisyCircuit nc = core::with_ideal_output_projector(
      bench::insert_noises(circuit, 5, bench::realistic_noise(1e-2), 10));
  core::ApproxOptions plain, reduced;
  plain.level = reduced.level = 1;
  reduced.eval.simplify = true;
  const double a = core::approximate_fidelity(nc, 0, 0, plain).value;
  const double b = core::approximate_fidelity(nc, 0, 0, reduced).value;
  EXPECT_NEAR(a, b, 1e-9);
}

TEST(Integration, LightconeReductionShrinksProjectedCircuits) {
  const qc::Circuit circuit = bench::qaoa_grid(3, 3, 1, 12);
  const ch::NoisyCircuit nc = core::with_ideal_output_projector(
      bench::insert_noises(circuit, 2, bench::realistic_noise(1e-2), 13));
  std::vector<qc::Gate> gates;
  for (const ch::Op& op : nc.ops()) {
    if (const qc::Gate* g = std::get_if<qc::Gate>(&op))
      gates.push_back(*g);
    else
      gates.push_back(qc::u1q(std::get<ch::NoiseOp>(op).qubit, la::Matrix{{2, 0}, {0, 3}}));
  }
  const auto reduced = qc::cancel_inverse_pairs(gates);
  EXPECT_LT(reduced.size(), gates.size() / 2) << "reduction should collapse the mirrored bulk";
}

TEST(Integration, TrajectoriesBothVariantsAgreeWithExact) {
  const qc::Circuit circuit = bench::qaoa_grid(2, 2, 1, 14);
  const ch::NoisyCircuit nc =
      bench::insert_noises(circuit, 6, bench::depolarizing_noise(0.05), 15);
  const double exact = sim::exact_fidelity_mm(nc, 0, 0);

  std::mt19937_64 rng1(1), rng2(2);
  const auto mm = sim::trajectories_sv(nc, 0, 0, 3000, rng1);
  const auto tn = core::trajectories_tn(nc, 0, 0, 3000, rng2);
  EXPECT_NEAR(mm.mean, exact, 5.0 * mm.std_error + 1e-6);
  EXPECT_NEAR(tn.mean, exact, 5.0 * tn.std_error + 1e-6);
}

TEST(Integration, TheoremBoundMatchesReportedContractionBudget) {
  const qc::Circuit circuit = bench::qaoa_grid(2, 3, 1, 20);
  const ch::NoisyCircuit nc =
      bench::insert_noises(circuit, 7, bench::depolarizing_noise(0.002), 21);
  for (std::size_t level : {0u, 1u, 2u}) {
    core::ApproxOptions opts;
    opts.level = level;
    const core::ApproxResult r = core::approximate_fidelity(nc, 0, 0, opts);
    EXPECT_DOUBLE_EQ(static_cast<double>(r.contractions), core::contraction_count(7, level));
    EXPECT_NEAR(r.error_bound, core::theorem1_error_bound(7, nc.max_noise_rate(), level), 1e-15);
  }
}

TEST(Integration, NoiseRateOrderingMatchesErrorOrdering) {
  // Property claimed by Fig. 6: larger per-site noise rate => larger
  // level-1 error on the same circuit and noise layout.
  const qc::Circuit circuit = bench::qaoa_grid(2, 3, 1, 30);
  double prev_err = -1.0;
  for (double p : {0.002, 0.01, 0.05}) {
    const ch::NoisyCircuit nc =
        bench::insert_noises(circuit, 5, bench::depolarizing_noise(p), 31);
    const double exact = sim::exact_fidelity_mm(nc, 0, 0);
    core::ApproxOptions opts;
    opts.level = 1;
    const double err = std::abs(core::approximate_fidelity(nc, 0, 0, opts).value - exact);
    EXPECT_GT(err, prev_err);
    prev_err = err;
  }
}

}  // namespace
}  // namespace noisim
