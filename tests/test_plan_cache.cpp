// PlanCache coverage: keying (same skeleton hits, different ContractOptions
// or slot layouts miss), LRU eviction, cache-on vs cache-off bit-identity,
// stats surfacing (plan_cache_hits / plans_compiled), and race-freedom of a
// cache shared by concurrent sweeps (exercised under the sanitizer jobs).
#include <gtest/gtest.h>

#include <random>
#include <thread>

#include "bench_support/generators.hpp"
#include "core/approx.hpp"
#include "core/plan_cache.hpp"

namespace noisim::core {
namespace {

EvalOptions tn_eval() {
  EvalOptions eval;
  eval.backend = EvalOptions::Backend::TensorNetwork;
  return eval;
}

ch::NoisyCircuit workload(std::uint64_t seed, std::size_t noises = 3) {
  return bench::insert_noises(bench::qaoa(16, 1, 77), noises,
                              bench::depolarizing_noise(0.01), seed);
}

std::vector<std::uint64_t> bitstrings(int n, std::size_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::uint64_t mask = (std::uint64_t{1} << n) - 1;
  std::vector<std::uint64_t> out(count);
  for (auto& v : out) v = rng() & mask;
  return out;
}

TEST(PlanCache, RepeatedCallsHitAndSkipRecompilation) {
  const ch::NoisyCircuit nc = workload(601);
  const std::vector<std::uint64_t> vb = bitstrings(16, 6, 1);
  ApproxOptions opts;
  opts.level = 1;
  opts.eval = tn_eval();
  PlanCache cache;
  opts.plan_cache = &cache;

  const ApproxBatchResult first = approximate_fidelity_outputs(nc, 0, vb, opts);
  EXPECT_EQ(first.contract_stats.plan_cache_hits, 0u);
  EXPECT_EQ(first.contract_stats.plan_cache_misses, 4u);  // 2 templates + 2 batched
  EXPECT_GT(first.contract_stats.plans_compiled, 0u);

  // A DIFFERENT bitstring set over the same skeleton: templates and batched
  // plans are topology-keyed, so everything hits and nothing recompiles.
  const std::vector<std::uint64_t> vb2 = bitstrings(16, 6, 2);
  const ApproxBatchResult second = approximate_fidelity_outputs(nc, 0, vb2, opts);
  EXPECT_EQ(second.contract_stats.plan_cache_hits, 4u);
  EXPECT_EQ(second.contract_stats.plan_cache_misses, 0u);
  EXPECT_EQ(second.contract_stats.plans_compiled, 0u);
  EXPECT_EQ(cache.hits(), 4u);
  EXPECT_EQ(cache.misses(), 4u);

  // Cached results are bit-identical to cache-free results.
  ApproxOptions no_cache = opts;
  no_cache.plan_cache = nullptr;
  const ApproxBatchResult bare = approximate_fidelity_outputs(nc, 0, vb2, no_cache);
  EXPECT_EQ(bare.contract_stats.plan_cache_hits, 0u);
  EXPECT_EQ(bare.contract_stats.plan_cache_misses, 0u);
  for (std::size_t o = 0; o < vb2.size(); ++o) {
    EXPECT_EQ(bare.raw[o].real(), second.raw[o].real());
    EXPECT_EQ(bare.raw[o].imag(), second.raw[o].imag());
    EXPECT_EQ(bare.level_values[o], second.level_values[o]);
  }
}

TEST(PlanCache, SingleOutputSweepSharesTheCache) {
  const ch::NoisyCircuit nc = workload(603);
  ApproxOptions opts;
  opts.level = 1;
  opts.eval = tn_eval();
  PlanCache cache;
  opts.plan_cache = &cache;

  const ApproxResult first = approximate_fidelity(nc, 0, 5, opts);
  const ApproxResult again = approximate_fidelity(nc, 0, 5, opts);
  EXPECT_EQ(again.contract_stats.plan_cache_hits, 4u);
  EXPECT_EQ(again.contract_stats.plans_compiled, 0u);
  EXPECT_EQ(first.raw, again.raw);
  EXPECT_EQ(first.level_values, again.level_values);

  // A different output bitstring changes the single-output template key
  // (its caps are baked into the network), so templates miss.
  const ApproxResult other = approximate_fidelity(nc, 0, 6, opts);
  EXPECT_EQ(other.contract_stats.plan_cache_hits, 0u);
  EXPECT_EQ(other.contract_stats.plan_cache_misses, 4u);

  ApproxOptions no_cache = opts;
  no_cache.plan_cache = nullptr;
  const ApproxResult bare = approximate_fidelity(nc, 0, 5, no_cache);
  EXPECT_EQ(bare.raw, first.raw);
  EXPECT_EQ(bare.level_values, first.level_values);
}

TEST(PlanCache, DifferentContractOptionsMiss) {
  const ch::NoisyCircuit nc = workload(605);
  const std::vector<std::uint64_t> vb = bitstrings(16, 4, 3);
  PlanCache cache;
  ApproxOptions opts;
  opts.level = 1;
  opts.eval = tn_eval();
  opts.plan_cache = &cache;
  (void)approximate_fidelity_outputs(nc, 0, vb, opts);
  const std::size_t misses_after_first = cache.misses();

  // Same skeleton, different planner options -> different template key.
  ApproxOptions other = opts;
  other.eval.tn.greedy_cost_weights = {1.0};
  const ApproxBatchResult r = approximate_fidelity_outputs(nc, 0, vb, other);
  EXPECT_EQ(r.contract_stats.plan_cache_hits, 0u);
  EXPECT_EQ(cache.misses(), misses_after_first + 4);
  EXPECT_EQ(cache.size(), 4u);  // two template entries per option set
}

TEST(PlanCache, PortfolioKnobsChangeTheTemplateKey) {
  const ch::NoisyCircuit nc = workload(615);
  const std::vector<std::uint64_t> vb = bitstrings(16, 4, 7);
  PlanCache cache;
  ApproxOptions opts;
  opts.level = 1;
  opts.eval = tn_eval();
  opts.plan_cache = &cache;
  (void)approximate_fidelity_outputs(nc, 0, vb, opts);

  // Disabling the portfolio changes the planner configuration, so the
  // template key must miss: a greedy-only plan may legitimately differ
  // from the portfolio's pick, and serving either under the other's key
  // would break replay determinism.
  ApproxOptions off = opts;
  off.eval.tn.portfolio = false;
  const ApproxBatchResult r_off = approximate_fidelity_outputs(nc, 0, vb, off);
  EXPECT_EQ(r_off.contract_stats.plan_cache_hits, 0u);
  EXPECT_EQ(r_off.contract_stats.plan_cache_misses, 4u);

  // So do a narrower strategy subset and a different restart count.
  ApproxOptions subset = opts;
  subset.eval.tn.portfolio_strategies = {tn::OrderStrategy::Greedy};
  const ApproxBatchResult r_subset = approximate_fidelity_outputs(nc, 0, vb, subset);
  EXPECT_EQ(r_subset.contract_stats.plan_cache_hits, 0u);

  ApproxOptions restarts = opts;
  restarts.eval.tn.random_restarts = 2;
  const ApproxBatchResult r_restarts = approximate_fidelity_outputs(nc, 0, vb, restarts);
  EXPECT_EQ(r_restarts.contract_stats.plan_cache_hits, 0u);

  // A warm repeat of the original options still hits everything and stays
  // bitwise-equal to a cache-free run with the portfolio on.
  const ApproxBatchResult warm = approximate_fidelity_outputs(nc, 0, vb, opts);
  EXPECT_EQ(warm.contract_stats.plan_cache_hits, 4u);
  EXPECT_EQ(warm.contract_stats.plans_compiled, 0u);
  ApproxOptions no_cache = opts;
  no_cache.plan_cache = nullptr;
  const ApproxBatchResult cold = approximate_fidelity_outputs(nc, 0, vb, no_cache);
  for (std::size_t o = 0; o < vb.size(); ++o) {
    EXPECT_EQ(cold.raw[o].real(), warm.raw[o].real());
    EXPECT_EQ(cold.raw[o].imag(), warm.raw[o].imag());
  }
}

TEST(PlanCache, DifferentSlotLayoutsMissOnBatchedPlansOnly) {
  const ch::NoisyCircuit nc = workload(607);
  const std::vector<std::uint64_t> vb = bitstrings(16, 4, 4);
  PlanCache cache;
  ApproxOptions opts;
  opts.level = 1;
  opts.eval = tn_eval();
  opts.plan_cache = &cache;
  (void)approximate_fidelity_outputs(nc, 0, vb, opts);

  // A level-2 ladder step over the same skeleton: the templates hit (the
  // topology is unchanged) but the batched plans carry a different
  // deviation bound / capacity, so they miss and compile fresh.
  ApproxOptions ladder = opts;
  ladder.level = 2;
  const ApproxBatchResult r = approximate_fidelity_outputs(nc, 0, vb, ladder);
  EXPECT_EQ(r.contract_stats.plan_cache_hits, 2u);    // both templates
  EXPECT_EQ(r.contract_stats.plan_cache_misses, 2u);  // both batched plans
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCache, LruEvictionPastMaxEntries) {
  const ch::NoisyCircuit a = workload(609);
  const ch::NoisyCircuit b = workload(611, 2);
  const std::vector<std::uint64_t> vb = bitstrings(16, 3, 5);
  PlanCache cache(2);  // exactly one circuit's top+bottom templates
  ApproxOptions opts;
  opts.level = 1;
  opts.eval = tn_eval();
  opts.plan_cache = &cache;

  const ApproxBatchResult a1 = approximate_fidelity_outputs(a, 0, vb, opts);
  EXPECT_EQ(cache.size(), 2u);
  (void)approximate_fidelity_outputs(b, 0, vb, opts);  // evicts a's entries
  EXPECT_EQ(cache.size(), 2u);
  const ApproxBatchResult a2 = approximate_fidelity_outputs(a, 0, vb, opts);
  EXPECT_EQ(a2.contract_stats.plan_cache_hits, 0u);  // recompiled after eviction
  EXPECT_EQ(a2.contract_stats.plan_cache_misses, 4u);
  for (std::size_t o = 0; o < vb.size(); ++o) {
    EXPECT_EQ(a1.raw[o].real(), a2.raw[o].real());
    EXPECT_EQ(a1.raw[o].imag(), a2.raw[o].imag());
  }

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_GT(cache.misses(), 0u);  // counters survive clear()
}

TEST(PlanCache, ConcurrentSweepsShareOneCacheRaceFree) {
  const ch::NoisyCircuit nc = workload(613);
  const std::vector<std::uint64_t> vb = bitstrings(16, 5, 6);
  ApproxOptions base;
  base.level = 1;
  base.eval = tn_eval();
  const ApproxBatchResult ref = approximate_fidelity_outputs(nc, 0, vb, base);

  PlanCache cache;
  constexpr std::size_t kThreads = 4;
  std::vector<ApproxBatchResult> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      ApproxOptions opts = base;
      opts.plan_cache = &cache;
      opts.threads = 2;  // worker threads inside each concurrent sweep too
      results[t] = approximate_fidelity_outputs(nc, 0, vb, opts);
    });
  for (std::thread& t : threads) t.join();

  for (std::size_t t = 0; t < kThreads; ++t)
    for (std::size_t o = 0; o < vb.size(); ++o) {
      EXPECT_EQ(ref.raw[o].real(), results[t].raw[o].real()) << "thread " << t;
      EXPECT_EQ(ref.raw[o].imag(), results[t].raw[o].imag()) << "thread " << t;
    }
  // Racing misses may both compile (by design), but the cache must end up
  // with exactly the two template entries and every call fully served.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_GE(cache.hits() + cache.misses(), 4u * kThreads);
}

}  // namespace
}  // namespace noisim::core
