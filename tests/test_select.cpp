// Backend-selection coverage: SimulateOptions validation (each bad field
// named in the thrown message), known-best picks on seeded circuits (tiny
// circuits go exact, low-noise wide circuits take the Algorithm-1 level
// ladder, high-noise loose budgets go to a sampler), budget adherence
// against the exact density-matrix reference, and the bit-identity contract
// (simulate()'s value equals direct invocation of the chosen backend with
// the reported config).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "bench_support/generators.hpp"
#include "channels/catalog.hpp"
#include "core/atpg.hpp"
#include "core/backend.hpp"
#include "core/plan_cache.hpp"
#include "core/trajectories_tn.hpp"
#include "mps/mps_trajectories.hpp"
#include "sim/density.hpp"
#include "sim/trajectories.hpp"
#include "tdd/tdd_sim.hpp"

namespace noisim::core {
namespace {

// Thrown message must name the offending field.
void expect_throw_naming(const SimulateOptions& opts, const std::string& field) {
  const ch::NoisyCircuit nc =
      bench::insert_noises(bench::qaoa(4, 1, 5), 1, bench::depolarizing_noise(0.01), 7);
  try {
    simulate(nc, 0, 0, opts);
    FAIL() << "expected LinalgError naming " << field;
  } catch (const LinalgError& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos) << e.what();
  }
}

TEST(SimulateOptionsValidation, BadBudgetsThrowNamingTheField) {
  SimulateOptions opts;
  opts.error_budget = 0.0;
  expect_throw_naming(opts, "error_budget");
  opts.error_budget = -1e-3;
  expect_throw_naming(opts, "error_budget");
  opts.error_budget = std::numeric_limits<double>::quiet_NaN();
  expect_throw_naming(opts, "error_budget");

  opts = SimulateOptions{};
  opts.memory_budget = 0;
  expect_throw_naming(opts, "memory_budget");

  opts = SimulateOptions{};
  opts.deadline = -1.0;
  expect_throw_naming(opts, "deadline");
  opts.deadline = std::numeric_limits<double>::infinity();
  expect_throw_naming(opts, "deadline");

  opts = SimulateOptions{};
  opts.failure_prob = 0.0;
  expect_throw_naming(opts, "failure_prob");
  opts.failure_prob = 2.0;
  expect_throw_naming(opts, "failure_prob");

  opts = SimulateOptions{};
  opts.max_terms = 0.0;
  expect_throw_naming(opts, "max_terms");
}

TEST(BackendSelection, TinyCircuitPicksAnExactBackend) {
  const ch::NoisyCircuit nc =
      bench::insert_noises(bench::hf_vqe(6, 11), 2, bench::depolarizing_noise(0.05), 13);
  SimulateOptions opts;
  opts.error_budget = 1e-9;  // only provably-exact configs can bid
  const SimResult r = simulate(nc, 0, 0, opts);
  EXPECT_EQ(r.config.achievable_error, 0.0);
  EXPECT_EQ(r.error_bound, 0.0);
  EXPECT_EQ(r.config.samples, 0u);
  EXPECT_NEAR(r.value, sim::exact_fidelity_mm(nc, 0, 0), 1e-9);
  EXPECT_EQ(r.considered.size(), default_backends().size());
}

TEST(BackendSelection, LowNoiseWideCircuitTakesTheLevelLadder) {
  // 16 qubits is past the density-matrix cap; 3 weak depolarizing sites
  // keep the level-ladder bound far below what any affordable sampler
  // offers at this budget.
  const ch::NoisyCircuit nc =
      bench::insert_noises(bench::qaoa(16, 1, 77), 3, bench::depolarizing_noise(0.01), 601);
  SimulateOptions loose;
  loose.error_budget = 2e-2;
  const SimResult rl = simulate(nc, 0, 0, loose);
  EXPECT_EQ(rl.backend, BackendKind::TnApprox);
  EXPECT_LE(rl.error_bound, loose.error_budget);

  SimulateOptions tight = loose;
  tight.error_budget = 1e-5;
  const SimResult rt = simulate(nc, 0, 0, tight);
  EXPECT_EQ(rt.backend, BackendKind::TnApprox);
  EXPECT_LE(rt.error_bound, tight.error_budget);
  // Tightening the budget climbs the ladder.
  EXPECT_GT(rt.config.level, rl.config.level);
}

TEST(BackendSelection, HighNoiseLooseBudgetGoesToASampler) {
  const ch::NoisyCircuit nc =
      bench::insert_noises(bench::hf_vqe(13, 21), 10, bench::depolarizing_noise(0.1), 23);
  SimulateOptions opts;
  opts.error_budget = 5e-2;
  const SimResult r = simulate(nc, 0, 0, opts);
  EXPECT_GT(r.config.samples, 0u) << "picked " << backend_name(r.backend);
  EXPECT_LE(r.config.achievable_error, opts.error_budget);
  EXPECT_EQ(r.traj.samples, r.config.samples);
}

TEST(BackendSelection, ForcedBackendIsHonoredAndBudgetChecked) {
  const ch::NoisyCircuit nc =
      bench::insert_noises(bench::hf_vqe(6, 11), 2, bench::depolarizing_noise(0.05), 13);
  SimulateOptions opts;
  opts.error_budget = 5e-2;
  opts.force_backend = BackendKind::SvTrajectories;
  const SimResult r = simulate(nc, 0, 0, opts);
  EXPECT_EQ(r.backend, BackendKind::SvTrajectories);
  EXPECT_EQ(r.considered.size(), 1u);

  // Forcing an infeasible backend throws, naming it and the violated budget.
  SimulateOptions squeezed = opts;
  squeezed.force_backend = BackendKind::Density;
  squeezed.memory_budget = 1000;  // below the 2 * 4^6 density footprint
  try {
    simulate(nc, 0, 0, squeezed);
    FAIL() << "expected LinalgError for the forced infeasible backend";
  } catch (const LinalgError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("density"), std::string::npos) << what;
    EXPECT_NE(what.find("memory_budget"), std::string::npos) << what;
  }

  // Wider than the density cap: forcing it reports the qubit limit.
  const ch::NoisyCircuit wide =
      bench::insert_noises(bench::qaoa(16, 1, 77), 3, bench::depolarizing_noise(0.01), 601);
  SimulateOptions forced;
  forced.force_backend = BackendKind::Density;
  EXPECT_THROW(simulate(wide, 0, 0, forced), LinalgError);
}

TEST(BackendSelection, NonMixtureNoiseRulesOutTnTrajectories) {
  ch::NoisyCircuit nc(bench::hf_vqe(8, 3));
  nc.add_noise(2, ch::amplitude_damping(0.25));
  SimulateOptions opts;
  opts.error_budget = 5e-2;
  const SimResult r = simulate(nc, 0, 0, opts);
  bool saw_tn_traj = false;
  for (const BackendChoice& c2 : r.considered) {
    if (c2.kind != BackendKind::TnTrajectories) continue;
    saw_tn_traj = true;
    EXPECT_FALSE(c2.estimate.feasible);
    EXPECT_NE(c2.estimate.reason.find("mixture"), std::string::npos) << c2.estimate.reason;
  }
  EXPECT_TRUE(saw_tn_traj);
  EXPECT_NE(r.backend, BackendKind::TnTrajectories);
}

// The bit-identity contract: simulate()'s value must equal invoking the
// chosen engine directly with the reported configuration.
double direct_invocation(const ch::NoisyCircuit& nc, std::uint64_t psi, std::uint64_t v,
                         const SimulateOptions& opts, const SimResult& r) {
  sim::ParallelOptions popts;
  popts.threads = opts.threads;
  switch (r.backend) {
    case BackendKind::Density:
      return sim::exact_fidelity_mm(nc, psi, v);
    case BackendKind::Tdd: {
      tdd::TddSimOptions topts;
      topts.timeout_seconds = opts.deadline;
      return tdd::exact_fidelity_tdd(nc, psi, v, topts);
    }
    case BackendKind::TnApprox:
      return approximate_fidelity(nc, psi, v, tn_approx_options(opts, r.config.level)).value;
    case BackendKind::TnTrajectories:
      return trajectories_tn(nc, psi, v, r.config.samples, opts.seed, popts, opts.eval).mean;
    case BackendKind::SvTrajectories:
      return sim::trajectories_sv(nc, psi, v, r.config.samples, opts.seed, popts).mean;
    case BackendKind::MpsTrajectories:
      return mps::trajectories_mps(nc, psi, v, r.config.samples, opts.seed, popts, opts.mps)
          .mean;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

TEST(BackendSelection, ResultIsBitIdenticalToDirectInvocation) {
  struct Case {
    ch::NoisyCircuit nc;
    double budget;
  };
  const std::vector<Case> cases = {
      {bench::insert_noises(bench::hf_vqe(6, 11), 2, bench::depolarizing_noise(0.05), 13),
       1e-9},
      {bench::insert_noises(bench::qaoa(16, 1, 77), 3, bench::depolarizing_noise(0.01), 601),
       2e-2},
      {bench::insert_noises(bench::hf_vqe(13, 21), 10, bench::depolarizing_noise(0.1), 23),
       5e-2},
      {bench::insert_noises(bench::supremacy_inst(3, 3, 8, 5), 4,
                            bench::realistic_noise(7e-3), 19),
       2e-2},
  };
  for (std::size_t i = 0; i < cases.size(); ++i) {
    SimulateOptions opts;
    opts.error_budget = cases[i].budget;
    const SimResult r = simulate(cases[i].nc, 0, 0, opts);
    const double direct = direct_invocation(cases[i].nc, 0, 0, opts, r);
    EXPECT_EQ(r.value, direct) << "case " << i << " backend " << backend_name(r.backend);
  }
}

TEST(BackendSelection, NeverExceedsErrorBudgetAgainstExactReference) {
  // All circuits small enough for the density reference; fixed seeds make
  // the sampler picks deterministic.
  const std::vector<ch::NoisyCircuit> circuits = {
      bench::insert_noises(bench::hf_vqe(6, 11), 2, bench::depolarizing_noise(0.05), 13),
      bench::insert_noises(bench::hf_vqe(8, 3), 4, bench::realistic_noise(1e-2), 29),
      bench::insert_noises(bench::supremacy_inst(3, 3, 8, 5), 4, bench::depolarizing_noise(0.02),
                           19),
  };
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    SimulateOptions opts;
    opts.error_budget = 2e-2;
    const SimResult r = simulate(circuits[i], 0, 0, opts);
    const double ref = sim::exact_fidelity_mm(circuits[i], 0, 0);
    EXPECT_LE(r.error_bound, opts.error_budget) << "circuit " << i;
    // Deterministic picks obey the bound outright; sampler picks hold at
    // the Hoeffding confidence, checked here for the fixed seeds above.
    EXPECT_LE(std::abs(r.value - ref), opts.error_budget + 1e-12)
        << "circuit " << i << " backend " << backend_name(r.backend);
  }
}

TEST(BackendSelection, EstimationPrewarmsThePlanCacheForTheRun) {
  const ch::NoisyCircuit nc =
      bench::insert_noises(bench::qaoa(16, 1, 77), 3, bench::depolarizing_noise(0.01), 601);
  PlanCache cache;
  SimulateOptions opts;
  opts.error_budget = 2e-2;
  opts.plan_cache = &cache;
  const SimResult r = simulate(nc, 0, 0, opts);
  EXPECT_EQ(r.backend, BackendKind::TnApprox);
  // The run fetched the top-layer template estimation compiled (the bottom
  // conjugate layer and batched plans are still compiled at run time), so
  // it plans strictly less than a cold direct invocation.
  EXPECT_GT(cache.hits(), 0u);
  SimulateOptions uncached = opts;
  uncached.plan_cache = nullptr;
  const ApproxResult cold =
      approximate_fidelity(nc, 0, 0, tn_approx_options(uncached, r.config.level));
  EXPECT_LT(r.stats.plans_compiled, cold.contract_stats.plans_compiled);
  EXPECT_EQ(r.value, cold.value);
}

TEST(BackendSelection, ImpossibleBudgetsThrowListingEveryBackend) {
  const ch::NoisyCircuit nc =
      bench::insert_noises(bench::hf_vqe(6, 11), 2, bench::depolarizing_noise(0.05), 13);
  SimulateOptions opts;
  opts.memory_budget = 1;  // nothing fits in one complex element
  try {
    simulate(nc, 0, 0, opts);
    FAIL() << "expected LinalgError";
  } catch (const LinalgError& e) {
    const std::string what = e.what();
    for (const Backend* b : default_backends())
      EXPECT_NE(what.find(backend_name(b->kind())), std::string::npos) << what;
  }
}

TEST(Atpg, SimulateOverloadsMatchTheApproxPathSemantics) {
  qc::Circuit c = bench::hf_vqe(8, 5);
  ch::NoisyCircuit nc(c.num_qubits());
  int placed = 0;
  for (const qc::Gate& g : c.gates()) {
    nc.add_gate(g);
    if (++placed == 20) nc.add_noise(1, ch::amplitude_damping(0.25));
  }
  SimulateOptions opts;
  opts.error_budget = 2e-2;
  const double p = fault_detection_probability(nc, 0b10110010, opts);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);

  const std::vector<std::uint64_t> candidates = {0b00000000, 0b10110010, 0b11111111,
                                                 0b01010101};
  const TestPatternResult best = best_test_pattern(nc, candidates, opts);
  EXPECT_EQ(best.all.size(), candidates.size());
  double max_p = 0.0;
  for (const double x : best.all) max_p = std::max(max_p, x);
  EXPECT_EQ(best.detection_probability, max_p);
  EXPECT_THROW(best_test_pattern(nc, {}, opts), LinalgError);
}

}  // namespace
}  // namespace noisim::core
