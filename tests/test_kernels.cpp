// Kernel-tier suite (ctest -L kernels): every SIMD tier must be BITWISE
// identical to the scalar reference -- per kernel family across a shape
// grid exercising odd/non-dividing sizes, zero-skip rows, gathered and
// broadcast operands, and end to end through approximate_fidelity /
// xeb_sweep with each tier forced at multiple thread counts. Also covers
// the dispatch machinery (cpuid detection, NOISIM_KERNELS parsing and
// fallback, per-tier stats counters) and the 64-byte-alignment guarantee
// of the executor's arenas.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "bench_support/generators.hpp"
#include "core/approx.hpp"
#include "tensor/aligned.hpp"
#include "tensor/contract.hpp"
#include "tensor/kernels.hpp"
#include "tn/plan.hpp"

namespace noisim::tsr {
namespace {

/// Every tier this host+build can actually run (scalar always first).
std::vector<KernelTier> available_tiers() {
  std::vector<KernelTier> tiers;
  for (std::size_t t = 0; t < kNumKernelTiers; ++t)
    if (kernel_table(static_cast<KernelTier>(t))) tiers.push_back(static_cast<KernelTier>(t));
  return tiers;
}

/// Restore the active tier on scope exit so tests compose in any order.
struct TierGuard {
  KernelTier prev;
  explicit TierGuard(KernelTier tier) : prev(set_kernel_tier(tier)) {}
  ~TierGuard() { set_kernel_tier(prev); }
};

/// Random interleaved complex buffer; when `with_zeros`, ~25% of elements
/// are exact (+0, +0) so the kernels' zero-skip branch is exercised --
/// including on negative-zero-adjacent accumulations.
aligned_vector<cplx> random_buf(std::size_t elems, std::mt19937_64& rng, bool with_zeros) {
  std::normal_distribution<double> gauss;
  aligned_vector<cplx> buf(elems);
  for (auto& v : buf) {
    if (with_zeros && rng() % 4 == 0)
      v = cplx{0.0, 0.0};
    else
      v = cplx{gauss(rng), gauss(rng)};
  }
  return buf;
}

void expect_same_bits(const aligned_vector<cplx>& ref, const aligned_vector<cplx>& got,
                      const char* what) {
  ASSERT_EQ(ref.size(), got.size()) << what;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].real(), got[i].real()) << what << " elem " << i;
    EXPECT_EQ(ref[i].imag(), got[i].imag()) << what << " elem " << i;
  }
}

struct Shape {
  std::size_t m, k, n;
};

/// Odd/non-dividing sizes around every vector width and the 64-wide cache
/// blocks, plus the exact shapes the select ladder special-cases
/// (k in {2,4,8,16} x n in {2,4}, and the m*n <= 64 small-k path).
const Shape kShapes[] = {
    {1, 1, 1},  {1, 2, 2},   {3, 2, 4},   {2, 4, 1},  {5, 2, 4},  {7, 4, 2},  {9, 16, 4},
    {4, 8, 2},  {6, 16, 2},  {8, 2, 8},   {5, 7, 3},  {3, 5, 5},  {13, 3, 7}, {1, 6, 31},
    {2, 9, 33}, {3, 130, 5}, {2, 3, 130}, {65, 4, 2}, {33, 2, 3}, {4, 66, 66},
};

TEST(Kernels, ScalarTableAlwaysAvailableAndDetectionOrdered) {
  ASSERT_NE(kernel_table(KernelTier::Scalar), nullptr);
  const std::vector<KernelTier> tiers = available_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), KernelTier::Scalar);
  // The detected tier must itself be runnable, and every tier at or below
  // a runnable tier's resolve must be runnable.
  EXPECT_NE(kernel_table(detected_kernel_tier()), nullptr);
  for (std::size_t t = 0; t < kNumKernelTiers; ++t) {
    const KernelTier resolved = resolve_kernel_tier(static_cast<KernelTier>(t));
    EXPECT_LE(static_cast<int>(resolved), static_cast<int>(t));
    EXPECT_NE(kernel_table(resolved), nullptr);
  }
}

TEST(Kernels, ParseValidatesAndNamesTheEnvVar) {
  EXPECT_EQ(parse_kernel_tier("scalar"), KernelTier::Scalar);
  EXPECT_EQ(parse_kernel_tier("avx2"), KernelTier::Avx2);
  EXPECT_EQ(parse_kernel_tier("avx512"), KernelTier::Avx512);
  EXPECT_EQ(parse_kernel_tier("auto"), detected_kernel_tier());
  try {
    parse_kernel_tier("sse9");
    FAIL() << "expected LinalgError";
  } catch (const LinalgError& e) {
    EXPECT_NE(std::string(e.what()).find("NOISIM_KERNELS"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("sse9"), std::string::npos);
  }
}

TEST(Kernels, SetTierReturnsPreviousAndFallsBackWhenUnsupported) {
  const KernelTier original = active_kernel_tier();
  const KernelTier prev = set_kernel_tier(KernelTier::Scalar);
  EXPECT_EQ(prev, original);
  EXPECT_EQ(active_kernel_tier(), KernelTier::Scalar);
  // Requesting the top tier lands on the best supported tier, never an
  // unrunnable one (on AVX-512 hosts that IS avx512; elsewhere it falls
  // back with a one-time stderr warning).
  set_kernel_tier(KernelTier::Avx512);
  EXPECT_EQ(active_kernel_tier(), resolve_kernel_tier(KernelTier::Avx512));
  set_kernel_tier(original);
  EXPECT_EQ(active_kernel_tier(), original);
}

TEST(Kernels, MatmulBitwiseAcrossTiersAndShapes) {
  std::mt19937_64 rng(41);
  for (const Shape& s : kShapes) {
    for (const bool zeros : {false, true}) {
      const aligned_vector<cplx> a = random_buf(s.m * s.k, rng, zeros);
      const aligned_vector<cplx> b = random_buf(s.k * s.n, rng, zeros);
      aligned_vector<cplx> ref(s.m * s.n, cplx{0.0, 0.0});
      detail::matmul_accumulate(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
      for (const KernelTier tier : available_tiers()) {
        const KernelTable* kt = kernel_table(tier);
        aligned_vector<cplx> got(s.m * s.n, cplx{0.0, 0.0});
        kt->matmul(a.data(), b.data(), got.data(), s.m, s.k, s.n);
        expect_same_bits(ref, got,
                         (std::string("matmul ") + kt->name + " " + std::to_string(s.m) + "x" +
                          std::to_string(s.k) + "x" + std::to_string(s.n))
                             .c_str());
      }
    }
  }
}

TEST(Kernels, SelectedMicrokernelsBitwiseAcrossTiersAndShapes) {
  std::mt19937_64 rng(42);
  for (const Shape& s : kShapes) {
    const aligned_vector<cplx> a = random_buf(s.m * s.k, rng, true);
    const aligned_vector<cplx> b = random_buf(s.k * s.n, rng, true);
    aligned_vector<cplx> ref(s.m * s.n, cplx{0.0, 0.0});
    detail::select_matmul(s.m, s.k, s.n)(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
    // select must agree with the generic kernel within a tier, too.
    aligned_vector<cplx> generic(s.m * s.n, cplx{0.0, 0.0});
    detail::matmul_accumulate(a.data(), b.data(), generic.data(), s.m, s.k, s.n);
    expect_same_bits(generic, ref, "scalar select vs generic");
    for (const KernelTier tier : available_tiers()) {
      const KernelTable* kt = kernel_table(tier);
      aligned_vector<cplx> got(s.m * s.n, cplx{0.0, 0.0});
      kt->select(s.m, s.k, s.n)(a.data(), b.data(), got.data(), s.m, s.k, s.n);
      expect_same_bits(ref, got,
                       (std::string("select ") + kt->name + " " + std::to_string(s.m) + "x" +
                        std::to_string(s.k) + "x" + std::to_string(s.n))
                           .c_str());
    }
  }
}

TEST(Kernels, GatheredBitwiseAcrossTiersAndIndexModes) {
  std::mt19937_64 rng(43);
  for (const Shape& s : kShapes) {
    const aligned_vector<cplx> a = random_buf(s.m * s.k, rng, true);
    const aligned_vector<cplx> b = random_buf(s.k * s.n, rng, true);
    // Gather tables: random permutations of the operand elements, the same
    // shape permute_gather produces for fused permutations.
    std::vector<std::uint32_t> a_idx(s.m * s.k), b_idx(s.k * s.n);
    for (std::size_t i = 0; i < a_idx.size(); ++i) a_idx[i] = static_cast<std::uint32_t>(i);
    for (std::size_t i = 0; i < b_idx.size(); ++i) b_idx[i] = static_cast<std::uint32_t>(i);
    std::shuffle(a_idx.begin(), a_idx.end(), rng);
    std::shuffle(b_idx.begin(), b_idx.end(), rng);
    const std::uint32_t* amode[] = {nullptr, a_idx.data()};
    const std::uint32_t* bmode[] = {nullptr, b_idx.data()};
    for (const std::uint32_t* ai : amode) {
      for (const std::uint32_t* bi : bmode) {
        aligned_vector<cplx> ref(s.m * s.n, cplx{0.0, 0.0});
        detail::matmul_accumulate_gathered(a.data(), ai, b.data(), bi, ref.data(), s.m, s.k,
                                           s.n);
        for (const KernelTier tier : available_tiers()) {
          const KernelTable* kt = kernel_table(tier);
          aligned_vector<cplx> got(s.m * s.n, cplx{0.0, 0.0});
          kt->gathered(a.data(), ai, b.data(), bi, got.data(), s.m, s.k, s.n);
          expect_same_bits(ref, got,
                           (std::string("gathered ") + kt->name + (ai ? " a-idx" : "") +
                            (bi ? " b-idx" : ""))
                               .c_str());
        }
      }
    }
  }
}

TEST(Kernels, BatchedBitwiseAcrossTiersIncludingBroadcast) {
  std::mt19937_64 rng(44);
  for (const Shape& s : kShapes) {
    const std::size_t batch = 5;
    const aligned_vector<cplx> a = random_buf(batch * s.m * s.k, rng, true);
    const aligned_vector<cplx> b = random_buf(batch * s.k * s.n, rng, true);
    // Stride combinations: full/full, broadcast-a (stride 0), broadcast-b.
    const std::size_t strides[][2] = {
        {s.m * s.k, s.k * s.n}, {0, s.k * s.n}, {s.m * s.k, 0}};
    for (const auto& st : strides) {
      aligned_vector<cplx> ref(batch * s.m * s.n, cplx{0.0, 0.0});
      detail::matmul_accumulate_batched(a.data(), b.data(), ref.data(), s.m, s.k, s.n, batch,
                                        st[0], st[1], s.m * s.n);
      for (const KernelTier tier : available_tiers()) {
        const KernelTable* kt = kernel_table(tier);
        aligned_vector<cplx> got(batch * s.m * s.n, cplx{0.0, 0.0});
        kt->batched(a.data(), b.data(), got.data(), s.m, s.k, s.n, batch, st[0], st[1],
                    s.m * s.n);
        expect_same_bits(ref, got, (std::string("batched ") + kt->name).c_str());
      }
    }
  }
}

TEST(Kernels, ArenaAndScratchBuffersAre64ByteAligned) {
  // Regression: operator new on complex<double> only guarantees 16 bytes;
  // every kernel-visible executor buffer must start on a 64-byte boundary.
  for (const std::size_t elems : {1ul, 3ul, 17ul, 1000ul, 4097ul}) {
    aligned_vector<cplx> v(elems);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kKernelAlignment, 0u)
        << "aligned_vector of " << elems;
    tn::ArenaBuffer arena;
    arena.ensure(elems);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(arena.data()) % kKernelAlignment, 0u)
        << "ArenaBuffer of " << elems;
  }
  // PlanWorkspace's buffers go through the same types.
  tn::PlanWorkspace ws;
  ws.arena.resize(129);
  ws.scratch_a.resize(65);
  ws.scratch_b.resize(33);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ws.arena.data()) % kKernelAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ws.scratch_a.data()) % kKernelAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ws.scratch_b.data()) % kKernelAlignment, 0u);
}

// --- whole-pipeline bit-identity with each tier forced -----------------------

qc::Circuit pipeline_circuit(int n, std::mt19937_64& rng) {
  qc::Circuit c(n);
  std::uniform_int_distribution<int> qubit(0, n - 1);
  std::uniform_real_distribution<double> angle(-3.0, 3.0);
  for (std::size_t i = 0; i < 4 * static_cast<std::size_t>(n); ++i) {
    switch (rng() % 6) {
      case 0: c.add(qc::h(qubit(rng))); break;
      case 1: c.add(qc::t(qubit(rng))); break;
      case 2: c.add(qc::rx(qubit(rng), angle(rng))); break;
      case 3: c.add(qc::rz(qubit(rng), angle(rng))); break;
      default: {
        int a = qubit(rng), b = qubit(rng);
        while (b == a) b = qubit(rng);
        c.add(rng() % 2 ? qc::cz(a, b) : qc::cx(a, b));
        break;
      }
    }
  }
  return c;
}

TEST(Kernels, PipelineBitwiseAcrossForcedTiers) {
  using core::ApproxBatchResult;
  using core::ApproxOptions;
  using core::ApproxResult;
  using core::SweepOptions;
  std::mt19937_64 rng(45);
  const int n = 5;
  const qc::Circuit circuit = pipeline_circuit(n, rng);
  const ch::NoisyCircuit nc = bench::insert_noises(circuit, 2, bench::realistic_noise(), 7);
  std::vector<std::uint64_t> vb;
  for (int i = 0; i < 9; ++i) vb.push_back(rng() & ((std::uint64_t{1} << n) - 1));

  ApproxOptions base;
  base.level = 2;
  // Force the tensor-network backend: it is the path that runs the plan
  // executor's kernels (Auto would pick the state vector at 5 qubits).
  base.eval.backend = core::EvalOptions::Backend::TensorNetwork;

  // Scalar-tier reference for every bitstring...
  std::vector<ApproxResult> refs;
  {
    TierGuard guard(KernelTier::Scalar);
    for (const std::uint64_t v : vb) refs.push_back(core::approximate_fidelity(nc, 0, v, base));
  }

  // ...must be reproduced EXACTLY by every tier, per-bitstring and through
  // the sharded sweep, at multiple thread counts.
  for (const KernelTier tier : available_tiers()) {
    TierGuard guard(tier);
    for (std::size_t o = 0; o < vb.size(); ++o) {
      const ApproxResult got = core::approximate_fidelity(nc, 0, vb[o], base);
      EXPECT_EQ(refs[o].value, got.value) << kernel_tier_name(tier) << " output " << o;
      EXPECT_EQ(refs[o].raw.real(), got.raw.real()) << kernel_tier_name(tier);
      EXPECT_EQ(refs[o].raw.imag(), got.raw.imag()) << kernel_tier_name(tier);
      ASSERT_EQ(refs[o].level_values.size(), got.level_values.size());
      for (std::size_t u = 0; u < got.level_values.size(); ++u)
        EXPECT_EQ(refs[o].level_values[u], got.level_values[u]) << kernel_tier_name(tier);
    }
    for (const std::size_t threads : {1ul, 3ul}) {
      SweepOptions sopts;
      sopts.approx = base;
      sopts.approx.threads = threads;
      sopts.shard_outputs = 4;  // ragged: 9 outputs across shards of 4
      const ApproxBatchResult sweep = core::xeb_sweep(nc, 0, vb, sopts);
      ASSERT_EQ(sweep.raw.size(), vb.size());
      for (std::size_t o = 0; o < vb.size(); ++o) {
        EXPECT_EQ(refs[o].raw.real(), sweep.raw[o].real())
            << kernel_tier_name(tier) << " threads " << threads << " output " << o;
        EXPECT_EQ(refs[o].raw.imag(), sweep.raw[o].imag())
            << kernel_tier_name(tier) << " threads " << threads << " output " << o;
      }
    }
  }
}

TEST(Kernels, DispatchCountersAttributeEveryKernelToTheForcedTier) {
  using core::ApproxOptions;
  std::mt19937_64 rng(46);
  const qc::Circuit circuit = pipeline_circuit(4, rng);
  const ch::NoisyCircuit nc = bench::insert_noises(circuit, 2, bench::realistic_noise(), 11);
  ApproxOptions base;
  base.level = 1;
  base.eval.backend = core::EvalOptions::Backend::TensorNetwork;
  for (const KernelTier tier : available_tiers()) {
    TierGuard guard(tier);
    const core::ApproxResult r = core::approximate_fidelity(nc, 0, 5, base);
    const tn::ContractStats& st = r.contract_stats;
    ASSERT_GT(st.num_pairwise, 0u) << kernel_tier_name(tier);
    EXPECT_EQ(st.kernels_scalar + st.kernels_avx2 + st.kernels_avx512, st.num_pairwise);
    const std::size_t in_tier = tier == KernelTier::Scalar   ? st.kernels_scalar
                                : tier == KernelTier::Avx2   ? st.kernels_avx2
                                                             : st.kernels_avx512;
    EXPECT_EQ(in_tier, st.num_pairwise) << kernel_tier_name(tier);
  }
}

TEST(Kernels, WorkspaceTableOverridesActiveTier) {
  // The executor seam: a table injected through PlanWorkspace::kernels wins
  // over the process-wide dispatch, and its invocations are attributed to
  // ITS tier -- the contract a GPU/remote table will rely on.
  std::mt19937_64 rng(47);
  tn::Network net;
  const tn::EdgeId e0 = net.new_edge(), e1 = net.new_edge(), e2 = net.new_edge();
  auto rand_tensor = [&](std::vector<std::size_t> shape) {
    Tensor t(std::move(shape));
    std::normal_distribution<double> gauss;
    for (std::size_t i = 0; i < t.size(); ++i) t[i] = cplx{gauss(rng), gauss(rng)};
    return t;
  };
  net.add_node(rand_tensor({2, 3}), {e0, e1});
  net.add_node(rand_tensor({3, 4}), {e1, e2});
  net.add_node(rand_tensor({4, 2}), {e2, e0});
  const tn::ContractionPlan plan = tn::ContractionPlan::compile(net, {});

  TierGuard guard(resolve_kernel_tier(KernelTier::Avx512));  // active != injected below
  tn::PlanWorkspace ws;
  tn::ContractStats stats;
  ws.kernels = kernel_table(KernelTier::Scalar);
  const Tensor via_scalar = plan.execute(net, ws, &stats);
  EXPECT_EQ(stats.kernels_scalar, stats.num_pairwise);
  ws.kernels = nullptr;
  const Tensor via_active = plan.execute(net, ws);
  ASSERT_EQ(via_scalar.size(), via_active.size());
  for (std::size_t i = 0; i < via_scalar.size(); ++i) EXPECT_EQ(via_scalar[i], via_active[i]);
}

}  // namespace
}  // namespace noisim::tsr
