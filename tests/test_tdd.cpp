// Tests for the tensor decision diagram package and TDD-based simulation.
#include <gtest/gtest.h>

#include <random>

#include "channels/catalog.hpp"
#include "core/circuit_network.hpp"
#include "core/doubled_network.hpp"
#include "sim/density.hpp"
#include "sim/statevector.hpp"
#include "tdd/tdd.hpp"
#include "tdd/tdd_sim.hpp"
#include "tensor/contract.hpp"
#include "tn/contractor.hpp"

namespace noisim::tdd {
namespace {

tsr::Tensor random_tensor2(std::size_t rank, std::mt19937_64& rng) {
  tsr::Tensor t(std::vector<std::size_t>(rank, 2));
  std::normal_distribution<double> gauss;
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = cplx{gauss(rng), gauss(rng)};
  return t;
}

TEST(Tdd, TerminalScalarRoundTrip) {
  Manager mgr;
  const Edge e = mgr.terminal(cplx{2.0, -1.0});
  const tsr::Tensor t = mgr.to_tensor(e, {});
  EXPECT_TRUE(approx_equal(t.to_scalar(), cplx{2.0, -1.0}));
}

TEST(Tdd, FromToTensorRoundTrip) {
  std::mt19937_64 rng(1);
  Manager mgr;
  for (std::size_t rank : {1u, 2u, 3u, 4u}) {
    const tsr::Tensor t = random_tensor2(rank, rng);
    std::vector<Var> vars;
    for (std::size_t i = 0; i < rank; ++i) vars.push_back(static_cast<Var>(i * 3 + 1));
    const Edge e = mgr.from_tensor(t, vars);
    EXPECT_TRUE(mgr.to_tensor(e, vars).approx_equal(t, 1e-12)) << "rank " << rank;
  }
}

TEST(Tdd, AxisOrderIndependence) {
  std::mt19937_64 rng(2);
  Manager mgr;
  const tsr::Tensor t = random_tensor2(2, rng);
  // Tensor with axes (var 5, var 2) equals its transpose with (var 2, var 5).
  const Edge a = mgr.from_tensor(t, {5, 2});
  const Edge b = mgr.from_tensor(t.permute({1, 0}), {2, 5});
  EXPECT_TRUE(a == b);  // canonical form => pointer + weight equality
}

TEST(Tdd, HashConsingSharesStructure) {
  Manager mgr;
  tsr::Tensor t({2, 2});
  t.at({0, 0}) = t.at({1, 1}) = cplx{1.0, 0.0};  // identity
  const Edge a = mgr.from_tensor(t, {0, 1});
  const Edge b = mgr.from_tensor(t, {0, 1});
  EXPECT_EQ(a.node, b.node);
  EXPECT_TRUE(a == b);
}

TEST(Tdd, ConstantTensorCollapsesToTerminal) {
  Manager mgr;
  tsr::Tensor t({2, 2});
  for (std::size_t i = 0; i < 4; ++i) t[i] = cplx{3.0, 0.0};
  const Edge e = mgr.from_tensor(t, {0, 1});
  EXPECT_TRUE(e.is_terminal());
  EXPECT_TRUE(approx_equal(e.weight, cplx{3.0, 0.0}));
}

TEST(Tdd, ZeroTensorIsCanonicalZero) {
  Manager mgr;
  const Edge e = mgr.from_tensor(tsr::Tensor({2, 2}), {0, 1});
  EXPECT_TRUE(e.is_terminal());
  EXPECT_TRUE(approx_equal(e.weight, cplx{0.0, 0.0}));
}

TEST(Tdd, AddMatchesDenseAddition) {
  std::mt19937_64 rng(3);
  Manager mgr;
  const tsr::Tensor a = random_tensor2(3, rng);
  const tsr::Tensor b = random_tensor2(3, rng);
  const std::vector<Var> vars{0, 1, 2};
  const Edge ea = mgr.from_tensor(a, vars);
  const Edge eb = mgr.from_tensor(b, vars);
  tsr::Tensor want = a;
  want += b;
  EXPECT_TRUE(mgr.to_tensor(mgr.add(ea, eb), vars).approx_equal(want, 1e-12));
}

TEST(Tdd, AddWithMismatchedSupports) {
  // f depends on var 0 only, g on var 1 only; f+g depends on both.
  Manager mgr;
  tsr::Tensor f({2});
  f[0] = cplx{1, 0};
  f[1] = cplx{2, 0};
  tsr::Tensor g({2});
  g[0] = cplx{10, 0};
  g[1] = cplx{20, 0};
  const Edge ef = mgr.from_tensor(f, {0});
  const Edge eg = mgr.from_tensor(g, {1});
  const tsr::Tensor sum = mgr.to_tensor(mgr.add(ef, eg), {0, 1});
  EXPECT_TRUE(approx_equal(sum.at({0, 0}), cplx{11, 0}));
  EXPECT_TRUE(approx_equal(sum.at({0, 1}), cplx{21, 0}));
  EXPECT_TRUE(approx_equal(sum.at({1, 0}), cplx{12, 0}));
  EXPECT_TRUE(approx_equal(sum.at({1, 1}), cplx{22, 0}));
}

TEST(Tdd, AddCancellationYieldsZero) {
  std::mt19937_64 rng(4);
  Manager mgr;
  const tsr::Tensor a = random_tensor2(2, rng);
  tsr::Tensor neg = a;
  neg *= cplx{-1.0, 0.0};
  const Edge e = mgr.add(mgr.from_tensor(a, {0, 1}), mgr.from_tensor(neg, {0, 1}));
  EXPECT_TRUE(e.is_terminal());
  EXPECT_TRUE(approx_equal(e.weight, cplx{0.0, 0.0}));
}

class TddContract : public ::testing::TestWithParam<int> {};

TEST_P(TddContract, MatchesDenseContraction) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 10);
  Manager mgr;
  // a over vars {0, 1, 2}, b over vars {1, 2, 3}; contract over {1, 2}.
  const tsr::Tensor a = random_tensor2(3, rng);
  const tsr::Tensor b = random_tensor2(3, rng);
  const Edge ea = mgr.from_tensor(a, {0, 1, 2});
  const Edge eb = mgr.from_tensor(b, {1, 2, 3});
  const Edge ec = mgr.contract(ea, eb, {1, 2});
  const tsr::Tensor got = mgr.to_tensor(ec, {0, 3});
  const tsr::Tensor want = tsr::contract(a, {1, 2}, b, {0, 1});
  EXPECT_TRUE(got.approx_equal(want, 1e-10));
}

TEST_P(TddContract, OuterProductWhenNoSumVars) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 30);
  Manager mgr;
  const tsr::Tensor a = random_tensor2(2, rng);
  const tsr::Tensor b = random_tensor2(1, rng);
  const Edge e = mgr.contract(mgr.from_tensor(a, {0, 2}), mgr.from_tensor(b, {1}), {});
  // Result over vars {0, 1, 2} = outer product with axes interleaved.
  const tsr::Tensor got = mgr.to_tensor(e, {0, 1, 2});
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      for (std::size_t k = 0; k < 2; ++k)
        EXPECT_TRUE(approx_equal(got.at({i, j, k}), a.at({i, k}) * b.at({j}), 1e-12));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TddContract, ::testing::Range(0, 8));

TEST(Tdd, ContractAbsentSumVarDoublesValue) {
  // Summing over a var absent from both operands multiplies by 2 (the
  // dimension), matching dense semantics of contracting an implicit
  // broadcast index.
  Manager mgr;
  const Edge a = mgr.terminal(cplx{3.0, 0.0});
  const Edge b = mgr.terminal(cplx{5.0, 0.0});
  const Edge r = mgr.contract(a, b, {7});
  EXPECT_TRUE(approx_equal(r.weight, cplx{30.0, 0.0}));
}

TEST(Tdd, NodeBudgetThrowsMemoryOut) {
  Manager mgr(4);
  std::mt19937_64 rng(5);
  EXPECT_THROW(mgr.from_tensor(random_tensor2(4, rng), {0, 1, 2, 3}), MemoryOutError);
}

// --- TDD network contraction ---------------------------------------------------

class TddVsTn : public ::testing::TestWithParam<int> {};

TEST_P(TddVsTn, NoiselessAmplitudeMatchesStatevector) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> q(0, 3);
  std::uniform_real_distribution<double> angle(-3.0, 3.0);
  qc::Circuit c(4);
  for (int i = 0; i < 20; ++i) {
    switch (i % 4) {
      case 0: c.add(qc::h(q(rng))); break;
      case 1: c.add(qc::rz(q(rng), angle(rng))); break;
      case 2: c.add(qc::ry(q(rng), angle(rng))); break;
      default: {
        int a = q(rng), b = q(rng);
        if (a == b) b = (a + 1) % 4;
        c.add(qc::cz(a, b));
      }
    }
  }
  const cplx want = sim::basis_amplitude(c, 0, 5);
  const cplx got = tdd_contract_network(core::amplitude_network(4, c.gates(), 0, 5));
  EXPECT_TRUE(approx_equal(got, want, 1e-10));
}

TEST_P(TddVsTn, NoisyFidelityMatchesDensityMatrix) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) + 90;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> q(0, 2);
  qc::Circuit c(3);
  c.add(qc::h(0)).add(qc::cx(0, 1)).add(qc::ry(2, 0.8)).add(qc::cz(1, 2)).add(qc::t(0));
  ch::NoisyCircuit nc(3);
  const auto& gs = c.gates();
  for (std::size_t i = 0; i < gs.size(); ++i) {
    nc.add_gate(gs[i]);
    if (i == 1) nc.add_noise(q(rng), ch::depolarizing(0.1));
    if (i == 3) nc.add_noise(q(rng), ch::amplitude_damping(0.15));
  }
  const double want = sim::exact_fidelity_mm(nc, 0, 0);
  EXPECT_NEAR(exact_fidelity_tdd(nc, 0, 0), want, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TddVsTn, ::testing::Range(0, 8));

TEST(TddSim, GhzAmplitude) {
  qc::Circuit c(3);
  c.add(qc::h(0)).add(qc::cx(0, 1)).add(qc::cx(1, 2));
  const cplx amp = tdd_contract_network(core::amplitude_network(3, c.gates(), 0, 0b111));
  EXPECT_NEAR(std::abs(amp), 1 / std::numbers::sqrt2, 1e-12);
}

TEST(TddSim, DiagramStaysCompactOnCliffordCircuit) {
  // GHZ circuits have tiny TDDs; sanity-check the compression claim.
  qc::Circuit c(8);
  c.add(qc::h(0));
  for (int i = 0; i + 1 < 8; ++i) c.add(qc::cx(i, i + 1));
  TddStats stats;
  tdd_contract_network(core::amplitude_network(8, c.gates(), 0, 0), {}, &stats);
  EXPECT_LT(stats.peak_nodes, 64u);
}

TEST(TddSim, TimeoutThrows) {
  qc::Circuit c(6);
  for (int r = 0; r < 6; ++r)
    for (int i = 0; i < 6; ++i) {
      c.add(qc::ry(i, 0.3 * (r + 1) + i));
      c.add(qc::cz(i, (i + 1) % 6));
    }
  TddSimOptions opts;
  opts.timeout_seconds = 1e-9;
  EXPECT_THROW(tdd_contract_network(core::amplitude_network(6, c.gates(), 0, 0), opts),
               TimeoutError);
}

TEST(TddSim, RejectsOpenNetworks) {
  tn::Network net;
  const tn::EdgeId e = net.new_edge();
  tsr::Tensor t({2});
  t[0] = cplx{1, 0};
  net.add_node(t, {e});
  EXPECT_THROW(tdd_contract_network(net), LinalgError);
}

}  // namespace
}  // namespace noisim::tdd
